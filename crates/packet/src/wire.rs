//! The zero-copy wire substrate: refcounted, copy-on-write packet buffers
//! drawn from a per-thread recycling pool, with a lazily-computed header
//! index shared by every element that looks at the packet.
//!
//! A simulated trial moves each datagram through many hands — the client
//! engine, middleboxes, the censor tap, routers, the server stack — and
//! historically every hand received its own heap clone and re-walked the
//! IPv4/TCP header chain from scratch. [`Wire`] collapses that cost:
//!
//! * **Refcounted sharing.** `Wire::clone` bumps a refcount. The on-path
//!   censor tap forwards the original and analyzes "a copy" that is really
//!   the same buffer; link-level duplication shares the buffer too.
//! * **Copy-on-write.** The first mutator (a router decrementing TTL, a
//!   middlebox rewriting a header) of a *shared* buffer pays one copy into
//!   a pooled buffer; a uniquely-held buffer is mutated in place.
//! * **Recycling pool.** Dropped buffers return to a per-thread slab, so
//!   steady-state trial execution performs no packet allocations at all —
//!   see [`pool_stats`] and the `alloc-count` feature of the bench crate.
//! * **Cached header index.** [`Wire::headers`] parses the IPv4 + TCP/UDP
//!   header chain once per buffer and memoizes the offsets and scalar
//!   fields ([`HeaderIndex`]); clones share the memo, and any mutation
//!   invalidates it. The TTL and checksums are deliberately *not* indexed
//!   so the per-hop TTL decrement keeps the index warm.
//!
//! Simulations are single-threaded (the sweep executor parallelizes across
//! trials, never within one), so `Wire` is intentionally `!Send`: the pool
//! is thread-local and refcounts are plain `Rc`.

use crate::ipv4::IpProtocol;
use crate::tcp::TcpFlags;
use crate::FourTuple;
use std::cell::{Cell, RefCell};
use std::mem::ManuallyDrop;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bound on buffers kept in the per-thread pool. A trial keeps at
/// most a few dozen packets in flight; 256 covers bursts (type-2 reset
/// volleys, fragment fans) without pinning real memory.
const POOL_CAP: usize = 256;

/// Buffers larger than this are not recycled — the pool is for datagrams,
/// not for whatever a pathological test built.
const MAX_POOLED_CAP: usize = 4096;

thread_local! {
    static POOL: RefCell<Vec<Rc<WireBuf>>> = const { RefCell::new(Vec::new()) };
}

// Pool counters are process-global (relaxed atomics) so benchmark harnesses
// can read them from the main thread while sweeps run in scoped workers.
// One relaxed add per *buffer acquisition* — noise next to emitting and
// checksumming the packet the buffer is for.
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the wire pool since process start (all threads). A
/// hit is a buffer served from a thread's pool; a miss is a fresh heap
/// allocation. After a warm-up trial the steady state is all hits.
///
/// Scheduling-dependent — diagnostic only, never part of the deterministic
/// [`intang-telemetry`](https://docs.rs) metrics merge.
pub fn pool_stats() -> (u64, u64) {
    (POOL_HITS.load(Ordering::Relaxed), POOL_MISSES.load(Ordering::Relaxed))
}

/// Reset [`pool_stats`] to zero (benchmark warm-up boundary).
pub fn reset_pool_stats() {
    POOL_HITS.store(0, Ordering::Relaxed);
    POOL_MISSES.store(0, Ordering::Relaxed);
}

thread_local! {
    /// Buffers currently referenced by at least one `Wire` handle on this
    /// thread. Unlike the pool's free-list size — which depends on what
    /// earlier trials warmed up — this is a pure function of the packets a
    /// trial holds in flight, so per-trial deltas are deterministic and
    /// safe to feed the telemetry time-series.
    static LIVE: Cell<u64> = const { Cell::new(0) };
}

/// Buffers currently referenced by at least one `Wire` handle on this
/// thread (pooled free buffers do not count).
pub fn live_buffers() -> u64 {
    LIVE.try_with(Cell::get).unwrap_or(0)
}

/// Build a complete IPv4+TCP datagram into a pooled [`Wire`]: the transport
/// segment is staged in a thread-local scratch buffer, so the common
/// emit-a-segment path (`ip.emit(&tcp.emit(..))` historically — two heap
/// vectors per packet) allocates nothing at steady state.
pub fn emit_tcp(ip: &crate::Ipv4Repr, tcp: &crate::TcpRepr) -> Wire {
    thread_local! {
        static SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
    }
    SCRATCH
        .try_with(|scratch| {
            let mut transport = scratch.borrow_mut();
            transport.clear();
            tcp.emit_into(ip.src, ip.dst, &mut transport);
            let mut w = Wire::with_capacity(crate::ipv4::HEADER_LEN + transport.len());
            ip.emit_into(&transport, w.vec_mut());
            w
        })
        .expect("packet built during thread teardown")
}

/// Cached parse state of a buffer. `Empty` = not computed yet;
/// `Unparseable` = computed, not a valid IPv4 datagram.
#[derive(Clone, Copy, Debug)]
enum CacheState {
    Empty,
    Unparseable,
    Parsed(HeaderIndex),
}

/// The memoized header index: every scalar an element commonly asks of a
/// packet, computed in one pass. Mirrors the validation rules of
/// [`crate::Ipv4Packet::new_checked`] / [`crate::TcpPacket::new_checked`],
/// so a packet those views reject reports `None`/[`L4Index::Other`] here.
///
/// Mutable-per-hop fields (TTL, checksums) are intentionally absent: they
/// are read straight from the bytes, and mutating them does not invalidate
/// the index (see [`Wire::decrement_ttl`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeaderIndex {
    /// IPv4 header length in bytes (validated `>= 20` and in-buffer).
    pub ip_header_len: u8,
    pub protocol: IpProtocol,
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub total_len: u16,
    pub ident: u16,
    pub dont_fragment: bool,
    pub more_fragments: bool,
    /// Fragment offset in bytes.
    pub frag_offset: u32,
    /// Absolute byte range of the IP payload within the wire buffer
    /// (clamped to the buffer like [`crate::Ipv4Packet::payload`]).
    pub ip_payload_start: u16,
    pub ip_payload_end: u16,
    pub l4: L4Index,
}

/// Transport-layer portion of a [`HeaderIndex`]. Only computed for
/// offset-zero (non- or first-) fragments, mirroring [`crate::four_tuple_of`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L4Index {
    Tcp(TcpIndex),
    Udp(UdpIndex),
    /// ICMP, unknown protocols, trailing fragments, or a transport header
    /// the checked views would reject.
    Other,
}

/// Scalar fields of a validated TCP header plus the absolute payload range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpIndex {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    /// TCP header length in bytes (validated `>= 20` and in-payload).
    pub header_len: u8,
    /// Absolute byte range of the TCP payload within the wire buffer.
    pub payload_start: u16,
    pub payload_end: u16,
}

/// Scalar fields of a UDP header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpIndex {
    pub src_port: u16,
    pub dst_port: u16,
}

impl HeaderIndex {
    /// The flow four-tuple, when the packet has one (mirrors
    /// [`crate::four_tuple_of`]).
    pub fn four_tuple(&self) -> Option<FourTuple> {
        match self.l4 {
            L4Index::Tcp(t) => Some(FourTuple::new(self.src, t.src_port, self.dst, t.dst_port)),
            L4Index::Udp(u) => Some(FourTuple::new(self.src, u.src_port, self.dst, u.dst_port)),
            L4Index::Other => None,
        }
    }

    /// The TCP index, if the packet carries a validated TCP header.
    pub fn tcp(&self) -> Option<&TcpIndex> {
        match &self.l4 {
            L4Index::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// True when the datagram is an IP fragment.
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }

    /// One pass over the header chain. Returns `None` for anything
    /// `Ipv4Packet::new_checked` would reject.
    fn compute(data: &[u8]) -> Option<HeaderIndex> {
        if data.len() < crate::ipv4::HEADER_LEN || data[0] >> 4 != 4 {
            return None;
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if ihl < crate::ipv4::HEADER_LEN || data.len() < ihl {
            return None;
        }
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        let frag_raw = u16::from_be_bytes([data[6] & 0x1f, data[7]]);
        let frag_offset = u32::from(frag_raw) * 8;
        let more_fragments = data[6] & 0x20 != 0;
        // IP payload clamped exactly like `Ipv4Packet::payload`.
        let declared_end = usize::from(total_len).max(ihl);
        let payload_end = declared_end.min(data.len());
        let protocol = IpProtocol::from(data[9]);
        let payload = &data[ihl..payload_end];
        let l4 = if frag_offset != 0 {
            L4Index::Other
        } else {
            match protocol {
                IpProtocol::Tcp => Self::index_tcp(payload, ihl),
                IpProtocol::Udp if payload.len() >= crate::udp::HEADER_LEN => L4Index::Udp(UdpIndex {
                    src_port: u16::from_be_bytes([payload[0], payload[1]]),
                    dst_port: u16::from_be_bytes([payload[2], payload[3]]),
                }),
                _ => L4Index::Other,
            }
        };
        Some(HeaderIndex {
            ip_header_len: ihl as u8,
            protocol,
            src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
            dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
            total_len,
            ident: u16::from_be_bytes([data[4], data[5]]),
            dont_fragment: data[6] & 0x40 != 0,
            more_fragments,
            frag_offset,
            ip_payload_start: ihl as u16,
            ip_payload_end: payload_end as u16,
            l4,
        })
    }

    fn index_tcp(payload: &[u8], ihl: usize) -> L4Index {
        // Same validation as `TcpPacket::new_checked`: short headers and
        // the "data offset < 5 words" malformation are not TCP.
        if payload.len() < crate::tcp::HEADER_LEN {
            return L4Index::Other;
        }
        let hlen = usize::from(payload[12] >> 4) * 4;
        if hlen < crate::tcp::HEADER_LEN || payload.len() < hlen {
            return L4Index::Other;
        }
        L4Index::Tcp(TcpIndex {
            src_port: u16::from_be_bytes([payload[0], payload[1]]),
            dst_port: u16::from_be_bytes([payload[2], payload[3]]),
            seq: u32::from_be_bytes([payload[4], payload[5], payload[6], payload[7]]),
            ack: u32::from_be_bytes([payload[8], payload[9], payload[10], payload[11]]),
            flags: TcpFlags(payload[13] & 0x3f),
            window: u16::from_be_bytes([payload[14], payload[15]]),
            header_len: hlen as u8,
            payload_start: (ihl + hlen.min(payload.len())) as u16,
            payload_end: (ihl + payload.len()) as u16,
        })
    }
}

/// The shared allocation behind one or more [`Wire`] handles: the bytes
/// plus the memoized header index.
struct WireBuf {
    data: Vec<u8>,
    cache: Cell<CacheState>,
}

impl WireBuf {
    fn index(&self) -> Option<HeaderIndex> {
        match self.cache.get() {
            CacheState::Parsed(ix) => Some(ix),
            CacheState::Unparseable => None,
            CacheState::Empty => {
                let ix = HeaderIndex::compute(&self.data);
                self.cache.set(match ix {
                    Some(ix) => CacheState::Parsed(ix),
                    None => CacheState::Unparseable,
                });
                ix
            }
        }
    }
}

/// Pop a unique buffer from the pool (cleared, cache reset) or allocate.
fn fresh_buf(min_capacity: usize) -> Rc<WireBuf> {
    let _ = LIVE.try_with(|c| c.set(c.get() + 1));
    let pooled = POOL.try_with(|p| p.borrow_mut().pop()).ok().flatten();
    match pooled {
        Some(mut rc) => {
            POOL_HITS.fetch_add(1, Ordering::Relaxed);
            let b = Rc::get_mut(&mut rc).expect("pooled buffers are uniquely held");
            b.data.clear();
            b.data.reserve(min_capacity);
            b.cache.set(CacheState::Empty);
            rc
        }
        None => {
            POOL_MISSES.fetch_add(1, Ordering::Relaxed);
            Rc::new(WireBuf {
                data: Vec::with_capacity(min_capacity),
                cache: Cell::new(CacheState::Empty),
            })
        }
    }
}

/// A raw serialized IPv4 datagram as it travels over the simulated wire.
///
/// Dereferences to `&[u8]` for reading; all mutation paths are explicit
/// ([`Wire::bytes_mut`], [`Wire::vec_mut`], `DerefMut`) and copy-on-write.
pub struct Wire {
    buf: ManuallyDrop<Rc<WireBuf>>,
}

impl Wire {
    /// An empty buffer from the pool (fill through [`Wire::vec_mut`]).
    pub fn new() -> Wire {
        Wire::with_capacity(0)
    }

    /// An empty pooled buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Wire {
        Wire {
            buf: ManuallyDrop::new(fresh_buf(cap)),
        }
    }

    /// Copy `bytes` into a pooled buffer.
    pub fn copy_from(bytes: &[u8]) -> Wire {
        let mut w = Wire::with_capacity(bytes.len());
        w.unique_buf().data.extend_from_slice(bytes);
        w
    }

    /// Wrap an existing allocation (no pool interaction; the vector's
    /// allocation is reused as-is).
    pub fn from_vec(v: Vec<u8>) -> Wire {
        let _ = LIVE.try_with(|c| c.set(c.get() + 1));
        Wire {
            buf: ManuallyDrop::new(Rc::new(WireBuf {
                data: v,
                cache: Cell::new(CacheState::Empty),
            })),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.data.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf.data
    }

    /// Number of `Wire` handles sharing this buffer (diagnostics/tests).
    pub fn ref_count(&self) -> usize {
        Rc::strong_count(&self.buf)
    }

    /// The memoized header index; `None` when the buffer is not a valid
    /// IPv4 datagram. Computed on first use, shared by clones, invalidated
    /// by mutation.
    pub fn headers(&self) -> Option<HeaderIndex> {
        self.buf.index()
    }

    /// Cached four-tuple lookup (see [`crate::four_tuple_of`]).
    pub fn four_tuple(&self) -> Option<FourTuple> {
        self.headers().and_then(|h| h.four_tuple())
    }

    /// The IPv4 TTL, read straight from the bytes (valid datagrams only).
    pub fn ttl(&self) -> Option<u8> {
        self.headers().map(|_| self.buf.data[8])
    }

    /// Make this handle the unique owner of its bytes (copy-on-write) and
    /// return the buffer. `preserve_cache` keeps the header index across
    /// the copy — only sound for mutations of non-indexed fields.
    fn make_unique(&mut self, preserve_cache: bool) -> &mut WireBuf {
        if Rc::strong_count(&self.buf) != 1 {
            let mut rc = fresh_buf(self.buf.data.len());
            {
                let b = Rc::get_mut(&mut rc).expect("fresh buffers are uniquely held");
                b.data.extend_from_slice(&self.buf.data);
                if preserve_cache {
                    b.cache.set(self.buf.cache.get());
                }
            }
            // Assigning through the ManuallyDrop drops our old reference
            // (a refcount decrement — the buffer stays with its co-owners).
            *self.buf = rc;
        } else if !preserve_cache {
            self.buf.cache.set(CacheState::Empty);
        }
        Rc::get_mut(&mut self.buf).expect("unique after make_unique")
    }

    /// `make_unique` for already-unique or fill paths where the cache was
    /// reset by construction.
    fn unique_buf(&mut self) -> &mut WireBuf {
        self.make_unique(true)
    }

    /// Mutable view of the bytes. Copy-on-write; invalidates the header
    /// index (the caller may rewrite anything).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.make_unique(false).data
    }

    /// Mutable access to the backing vector (length may change).
    /// Copy-on-write; invalidates the header index.
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.make_unique(false).data
    }

    /// Decrement the IPv4 TTL by up to `hops` (saturating at zero) and
    /// adjust the header checksum via RFC 1624 incremental update — only
    /// the (TTL, protocol) word is re-summed, not the whole header.
    /// Byte-for-byte equivalent to `hops` single decrements with a full
    /// checksum refresh (every in-sim header carries its canonical
    /// checksum, which simcheck separately enforces), and — because
    /// neither TTL nor checksum is indexed — the header index stays warm.
    ///
    /// Returns the remaining TTL, or `None` (buffer untouched) when the
    /// bytes are not a valid IPv4 datagram.
    pub fn decrement_ttl(&mut self, hops: u8) -> Option<u8> {
        self.headers()?;
        let buf = self.make_unique(true);
        let ttl = buf.data[8].saturating_sub(hops);
        let old_word = u16::from_be_bytes([buf.data[8], buf.data[9]]);
        let new_word = u16::from_be_bytes([ttl, buf.data[9]]);
        let old_ck = u16::from_be_bytes([buf.data[10], buf.data[11]]);
        let ck = crate::checksum::incremental_update(old_ck, old_word, new_word);
        buf.data[8] = ttl;
        buf.data[10..12].copy_from_slice(&ck.to_be_bytes());
        Some(ttl)
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.data.clone()
    }

    /// Simcheck probe: does the memoized header index still agree with a
    /// fresh parse of the bytes? Returns a description of the first
    /// disagreement, or `None` when coherent (an uncomputed cache is
    /// trivially coherent). Read-only — never computes or repairs the
    /// cache.
    pub fn check_header_cache(&self) -> Option<String> {
        let fresh = HeaderIndex::compute(&self.buf.data);
        match (self.buf.cache.get(), fresh) {
            (CacheState::Empty, _) => None,
            (CacheState::Unparseable, None) => None,
            (CacheState::Unparseable, Some(_)) => Some("cache says unparseable but the bytes parse".to_string()),
            (CacheState::Parsed(ix), Some(f)) if ix == f => None,
            (CacheState::Parsed(ix), f) => Some(format!("cached header index {ix:?} disagrees with fresh parse {f:?}")),
        }
    }

    /// Test-only: overwrite one byte while (incorrectly) keeping the
    /// header cache, simulating the cache-coherency bug class that
    /// [`Wire::check_header_cache`] exists to catch. Never use outside
    /// tests — real mutation paths go through [`Wire::bytes_mut`].
    #[doc(hidden)]
    pub fn poke_preserving_cache_for_test(&mut self, idx: usize, val: u8) {
        self.make_unique(true).data[idx] = val;
    }
}

impl Default for Wire {
    fn default() -> Wire {
        Wire::new()
    }
}

impl Clone for Wire {
    fn clone(&self) -> Wire {
        Wire {
            buf: ManuallyDrop::new(Rc::clone(&self.buf)),
        }
    }
}

impl Drop for Wire {
    fn drop(&mut self) {
        // SAFETY: `buf` is never touched again; ManuallyDrop::take moves
        // the Rc out exactly once.
        let rc = unsafe { ManuallyDrop::take(&mut self.buf) };
        if Rc::strong_count(&rc) == 1 {
            let _ = LIVE.try_with(|c| c.set(c.get().saturating_sub(1)));
            if rc.data.capacity() > 0 && rc.data.capacity() <= MAX_POOLED_CAP {
                // Last handle: recycle the allocation. `try_with` guards
                // against drops during thread teardown.
                let _ = POOL.try_with(move |p| {
                    let mut pool = p.borrow_mut();
                    if pool.len() < POOL_CAP {
                        pool.push(rc);
                    }
                });
            }
        }
    }
}

impl std::ops::Deref for Wire {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf.data
    }
}

impl std::ops::DerefMut for Wire {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.bytes_mut()
    }
}

impl AsRef<[u8]> for Wire {
    fn as_ref(&self) -> &[u8] {
        &self.buf.data
    }
}

impl std::borrow::Borrow<[u8]> for Wire {
    fn borrow(&self) -> &[u8] {
        &self.buf.data
    }
}

impl From<Vec<u8>> for Wire {
    fn from(v: Vec<u8>) -> Wire {
        Wire::from_vec(v)
    }
}

impl From<&[u8]> for Wire {
    fn from(s: &[u8]) -> Wire {
        Wire::copy_from(s)
    }
}

impl From<Wire> for Vec<u8> {
    fn from(w: Wire) -> Vec<u8> {
        w.to_vec()
    }
}

impl std::fmt::Debug for Wire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Wire({} bytes, rc={})", self.len(), self.ref_count())
    }
}

impl PartialEq for Wire {
    fn eq(&self, other: &Wire) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Wire {}

impl PartialEq<Vec<u8>> for Wire {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialEq<&[u8]> for Wire {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Wire {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl FromIterator<u8> for Wire {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Wire {
        Wire::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ipv4Packet, PacketBuilder, TcpPacket};
    use std::net::Ipv4Addr;

    fn sample() -> Wire {
        PacketBuilder::tcp(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 40000, 80)
            .seq(7777)
            .flags(TcpFlags::PSH_ACK)
            .payload(b"GET / HTTP/1.1\r\n\r\n")
            .build()
    }

    #[test]
    fn index_matches_views() {
        let w = sample();
        let h = w.headers().expect("valid datagram");
        let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(usize::from(h.ip_header_len), ip.header_len());
        assert_eq!(h.src, ip.src_addr());
        assert_eq!(h.dst, ip.dst_addr());
        assert_eq!(h.protocol, ip.protocol());
        let t = h.tcp().expect("tcp index");
        assert_eq!(t.src_port, tcp.src_port());
        assert_eq!(t.dst_port, tcp.dst_port());
        assert_eq!(t.seq, tcp.seq_number());
        assert_eq!(t.flags, tcp.flags());
        assert_eq!(&w[usize::from(t.payload_start)..usize::from(t.payload_end)], tcp.payload());
        assert_eq!(w.four_tuple(), crate::four_tuple_of(&w));
    }

    #[test]
    fn clone_shares_and_cow_unshares() {
        let a = sample();
        let mut b = a.clone();
        assert_eq!(a.ref_count(), 2);
        // Reading never copies.
        assert_eq!(a.as_slice(), b.as_slice());
        // Writing copies exactly once and never aliases into the original.
        b.bytes_mut()[8] = 1; // stomp the TTL
        assert_eq!(a.ref_count(), 1);
        assert_eq!(b.ref_count(), 1);
        assert_ne!(a[8], b[8]);
        assert_eq!(a, sample(), "original unchanged by the clone's write");
    }

    #[test]
    fn mutation_invalidates_index() {
        let mut w = sample();
        let before = w.headers().unwrap();
        w.bytes_mut()[19] = 77; // rewrite the last dst-addr octet
        let after = w.headers().unwrap();
        assert_ne!(before.dst, after.dst);
        assert_eq!(after.dst, Ipv4Addr::new(10, 0, 0, 77));
    }

    #[test]
    fn cow_write_keeps_clone_index_fresh() {
        let a = sample();
        let _warm = a.headers();
        let mut b = a.clone();
        b.bytes_mut()[16] = 99; // dst addr first octet, via the clone
        assert_eq!(a.headers().unwrap().dst, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(b.headers().unwrap().dst.octets()[0], 99);
    }

    #[test]
    fn decrement_ttl_matches_per_hop_loop() {
        let mut fast = sample();
        let mut slow = sample();
        fast.decrement_ttl(3).unwrap();
        for _ in 0..3 {
            let mut ip = Ipv4Packet::new_unchecked(&mut slow[..]);
            ip.decrement_ttl();
        }
        assert_eq!(fast.as_slice(), slow.as_slice());
        assert!(Ipv4Packet::new_checked(&fast[..]).unwrap().verify_header_checksum());
        // Saturates at zero like the loop.
        let mut w = sample();
        assert_eq!(w.decrement_ttl(255), Some(0));
    }

    #[test]
    fn decrement_ttl_preserves_index_and_cow() {
        let a = sample();
        let warm = a.headers().unwrap();
        let mut b = a.clone();
        assert_eq!(b.decrement_ttl(2), Some(62));
        assert_eq!(a.ttl(), Some(64), "original unchanged");
        assert_eq!(b.headers().unwrap(), warm, "index survives a TTL write");
    }

    #[test]
    fn pool_recycles_buffers() {
        // Drain whatever earlier tests pooled, then verify a drop→alloc
        // round trip reuses the buffer.
        let w = Wire::copy_from(&[1, 2, 3]);
        drop(w);
        let (h0, _m0) = pool_stats();
        let w2 = Wire::with_capacity(3);
        let (h1, _m1) = pool_stats();
        assert!(h1 > h0, "second allocation came from the pool");
        drop(w2);
    }

    #[test]
    fn shared_buffers_are_not_pooled_until_last_drop() {
        let a = Wire::copy_from(&[9; 64]);
        let b = a.clone();
        drop(a); // refcount 2 -> 1: must NOT enter the pool
        assert_eq!(b.ref_count(), 1);
        assert_eq!(b.as_slice(), &[9; 64][..]);
    }

    #[test]
    fn live_buffers_counts_handles_not_pool() {
        let base = live_buffers();
        let a = Wire::copy_from(&[1, 2, 3]);
        assert_eq!(live_buffers(), base + 1);
        let b = a.clone();
        assert_eq!(live_buffers(), base + 1, "clones share one buffer");
        let mut c = b.clone();
        c.bytes_mut()[0] = 9; // copy-on-write: a second buffer appears
        assert_eq!(live_buffers(), base + 2);
        drop(a);
        assert_eq!(live_buffers(), base + 2, "co-owner still holds the first buffer");
        drop(b);
        assert_eq!(live_buffers(), base + 1, "pooled buffers are not live");
        drop(c);
        assert_eq!(live_buffers(), base);
        let v = Wire::from_vec(vec![4, 5]);
        assert_eq!(live_buffers(), base + 1);
        drop(v);
        assert_eq!(live_buffers(), base);
    }

    #[test]
    fn unparseable_is_cached_too() {
        let w = Wire::copy_from(&[0xff; 4]);
        assert!(w.headers().is_none());
        assert!(w.four_tuple().is_none());
        assert!(w.ttl().is_none());
    }
}
