//! Minimal DNS codec: queries and A-record answers, over UDP and over TCP
//! (2-byte length prefix framing, RFC 1035 §4.2.2).
//!
//! The GFW poisons UDP DNS by injecting a forged response (§2.1) and resets
//! TCP DNS connections like HTTP. INTANG's DNS forwarder converts UDP
//! queries to TCP queries toward an unpolluted resolver (§6); this codec is
//! what both sides speak.

use crate::{ParseError, Result};
use std::net::Ipv4Addr;

pub const TYPE_A: u16 = 1;
pub const CLASS_IN: u16 = 1;

/// A DNS question.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    pub name: String,
    pub qtype: u16,
    pub qclass: u16,
}

/// A DNS resource record (A records only carry a meaningful `addr`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub name: String,
    pub rtype: u16,
    pub ttl: u32,
    pub addr: Ipv4Addr,
}

/// A DNS message (query or response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsMessage {
    pub id: u16,
    pub is_response: bool,
    pub rcode: u8,
    pub questions: Vec<Question>,
    pub answers: Vec<Record>,
}

impl DnsMessage {
    /// Build an A query for `name`.
    pub fn query(id: u16, name: &str) -> DnsMessage {
        DnsMessage {
            id,
            is_response: false,
            rcode: 0,
            questions: vec![Question {
                name: name.to_string(),
                qtype: TYPE_A,
                qclass: CLASS_IN,
            }],
            answers: Vec::new(),
        }
    }

    /// Build a response answering `query` with one A record.
    pub fn answer_a(query: &DnsMessage, addr: Ipv4Addr, ttl: u32) -> DnsMessage {
        let name = query.questions.first().map(|q| q.name.clone()).unwrap_or_default();
        DnsMessage {
            id: query.id,
            is_response: true,
            rcode: 0,
            questions: query.questions.clone(),
            answers: vec![Record {
                name,
                rtype: TYPE_A,
                ttl,
                addr,
            }],
        }
    }

    pub fn first_name(&self) -> Option<&str> {
        self.questions.first().map(|q| q.name.as_str())
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.is_response {
            flags |= 0x8000 | 0x0400; // QR + AA
        }
        flags |= 0x0100; // RD
        flags |= u16::from(self.rcode) & 0x000f;
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // NS count
        out.extend_from_slice(&0u16.to_be_bytes()); // AR count
        for q in &self.questions {
            encode_name(&q.name, &mut out);
            out.extend_from_slice(&q.qtype.to_be_bytes());
            out.extend_from_slice(&q.qclass.to_be_bytes());
        }
        for a in &self.answers {
            encode_name(&a.name, &mut out);
            out.extend_from_slice(&a.rtype.to_be_bytes());
            out.extend_from_slice(&CLASS_IN.to_be_bytes());
            out.extend_from_slice(&a.ttl.to_be_bytes());
            out.extend_from_slice(&4u16.to_be_bytes());
            out.extend_from_slice(&a.addr.octets());
        }
        out
    }

    pub fn decode(data: &[u8]) -> Result<DnsMessage> {
        if data.len() < 12 {
            return Err(ParseError::Truncated);
        }
        let id = u16::from_be_bytes([data[0], data[1]]);
        let flags = u16::from_be_bytes([data[2], data[3]]);
        let qd = u16::from_be_bytes([data[4], data[5]]) as usize;
        let an = u16::from_be_bytes([data[6], data[7]]) as usize;
        let mut pos = 12;
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let (name, np) = decode_name(data, pos)?;
            pos = np;
            if data.len() < pos + 4 {
                return Err(ParseError::Truncated);
            }
            let qtype = u16::from_be_bytes([data[pos], data[pos + 1]]);
            let qclass = u16::from_be_bytes([data[pos + 2], data[pos + 3]]);
            pos += 4;
            questions.push(Question { name, qtype, qclass });
        }
        let mut answers = Vec::with_capacity(an);
        for _ in 0..an {
            let (name, np) = decode_name(data, pos)?;
            pos = np;
            if data.len() < pos + 10 {
                return Err(ParseError::Truncated);
            }
            let rtype = u16::from_be_bytes([data[pos], data[pos + 1]]);
            let ttl = u32::from_be_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
            let rdlen = u16::from_be_bytes([data[pos + 8], data[pos + 9]]) as usize;
            pos += 10;
            if data.len() < pos + rdlen {
                return Err(ParseError::Truncated);
            }
            let addr = if rtype == TYPE_A && rdlen == 4 {
                Ipv4Addr::new(data[pos], data[pos + 1], data[pos + 2], data[pos + 3])
            } else {
                Ipv4Addr::UNSPECIFIED
            };
            pos += rdlen;
            answers.push(Record { name, rtype, ttl, addr });
        }
        Ok(DnsMessage {
            id,
            is_response: flags & 0x8000 != 0,
            rcode: (flags & 0x000f) as u8,
            questions,
            answers,
        })
    }

    /// Frame for DNS-over-TCP: 2-byte big-endian length prefix.
    pub fn encode_tcp(&self) -> Vec<u8> {
        let body = self.encode();
        let mut out = Vec::with_capacity(body.len() + 2);
        out.extend_from_slice(&(body.len() as u16).to_be_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Try to extract one length-prefixed message from a TCP stream buffer.
    /// Returns the message and the number of bytes consumed.
    pub fn decode_tcp(stream: &[u8]) -> Result<(DnsMessage, usize)> {
        if stream.len() < 2 {
            return Err(ParseError::Truncated);
        }
        let len = u16::from_be_bytes([stream[0], stream[1]]) as usize;
        if stream.len() < 2 + len {
            return Err(ParseError::Truncated);
        }
        let msg = DnsMessage::decode(&stream[2..2 + len])?;
        Ok((msg, 2 + len))
    }
}

fn encode_name(name: &str, out: &mut Vec<u8>) {
    for label in name.split('.').filter(|l| !l.is_empty()) {
        debug_assert!(label.len() < 64, "DNS label too long");
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out.push(0);
}

fn decode_name(data: &[u8], mut pos: usize) -> Result<(String, usize)> {
    let mut name = String::new();
    loop {
        let &len = data.get(pos).ok_or(ParseError::Truncated)?;
        if len & 0xc0 == 0xc0 {
            // Compression pointers: not emitted by us; reject to stay simple.
            return Err(ParseError::Unsupported);
        }
        pos += 1;
        if len == 0 {
            break;
        }
        let len = usize::from(len);
        let label = data.get(pos..pos + len).ok_or(ParseError::Truncated)?;
        if !name.is_empty() {
            name.push('.');
        }
        name.push_str(std::str::from_utf8(label).map_err(|_| ParseError::Malformed)?);
        pos += len;
    }
    Ok((name, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let q = DnsMessage::query(0x1234, "www.dropbox.com");
        let wire = q.encode();
        let back = DnsMessage::decode(&wire).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.first_name(), Some("www.dropbox.com"));
        assert!(!back.is_response);
    }

    #[test]
    fn answer_round_trip() {
        let q = DnsMessage::query(7, "example.org");
        let a = DnsMessage::answer_a(&q, Ipv4Addr::new(93, 184, 216, 34), 300);
        let back = DnsMessage::decode(&a.encode()).unwrap();
        assert_eq!(back, a);
        assert!(back.is_response);
        assert_eq!(back.answers[0].addr, Ipv4Addr::new(93, 184, 216, 34));
        assert_eq!(back.id, 7, "response keeps the query id");
    }

    #[test]
    fn tcp_framing() {
        let q = DnsMessage::query(9, "tor.bridges.example");
        let framed = q.encode_tcp();
        // Partial buffer -> Truncated.
        assert_eq!(
            DnsMessage::decode_tcp(&framed[..framed.len() - 1]).unwrap_err(),
            ParseError::Truncated
        );
        let (msg, used) = DnsMessage::decode_tcp(&framed).unwrap();
        assert_eq!(msg, q);
        assert_eq!(used, framed.len());
        // Two messages back to back.
        let mut two = framed.clone();
        two.extend_from_slice(&DnsMessage::query(10, "b.example").encode_tcp());
        let (m1, used1) = DnsMessage::decode_tcp(&two).unwrap();
        assert_eq!(m1.id, 9);
        let (m2, _) = DnsMessage::decode_tcp(&two[used1..]).unwrap();
        assert_eq!(m2.id, 10);
    }

    #[test]
    fn rejects_compression_pointer() {
        let q = DnsMessage::query(1, "a.b");
        let mut wire = q.encode();
        wire[12] = 0xc0; // turn first label into a compression pointer
        assert!(DnsMessage::decode(&wire).is_err());
    }
}
