//! IPv4 header view and representation.
//!
//! Supports fragmentation fields and the deliberate "IP total length larger
//! than actual buffer" malformation from Table 3 of the paper (a candidate
//! insertion packet: servers drop it, the GFW accepts it).

use crate::{checksum, ParseError, Result};
use std::net::Ipv4Addr;

/// Upper-layer protocol numbers we care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    Icmp,
    Tcp,
    Udp,
    Other(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(p: IpProtocol) -> u8 {
        match p {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

pub const HEADER_LEN: usize = 20;

/// Zero-copy view over an IPv4 datagram.
#[derive(Debug, Clone, Copy)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wrap a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Self {
        Ipv4Packet { buffer }
    }

    /// Wrap a buffer, validating version and header length. Note that a
    /// *total length* exceeding the buffer is intentionally tolerated here
    /// (the view clamps the payload); endpoints that want to reject such
    /// packets call [`Ipv4Packet::total_len_consistent`].
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = Ipv4Packet::new_unchecked(buffer);
        let data = pkt.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        if pkt.version() != 4 {
            return Err(ParseError::Unsupported);
        }
        let ihl = pkt.header_len();
        if ihl < HEADER_LEN || data.len() < ihl {
            return Err(ParseError::BadLength);
        }
        Ok(pkt)
    }

    pub fn into_inner(self) -> T {
        self.buffer
    }

    fn data(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    pub fn version(&self) -> u8 {
        self.data()[0] >> 4
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        usize::from(self.data()[0] & 0x0f) * 4
    }

    pub fn total_len(&self) -> u16 {
        u16::from_be_bytes([self.data()[2], self.data()[3]])
    }

    /// True when the total-length field matches the buffer exactly. The
    /// Linux receive path drops datagrams whose declared total length
    /// exceeds the octets actually received; the GFW does not (Table 3).
    pub fn total_len_consistent(&self) -> bool {
        usize::from(self.total_len()) == self.data().len()
    }

    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.data()[4], self.data()[5]])
    }

    pub fn dont_fragment(&self) -> bool {
        self.data()[6] & 0x40 != 0
    }

    pub fn more_fragments(&self) -> bool {
        self.data()[6] & 0x20 != 0
    }

    /// Fragment offset in bytes (the wire field is in 8-byte units).
    pub fn frag_offset(&self) -> usize {
        let raw = u16::from_be_bytes([self.data()[6] & 0x1f, self.data()[7]]);
        usize::from(raw) * 8
    }

    /// True when this datagram is a fragment (either non-zero offset or
    /// more-fragments set).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments() || self.frag_offset() != 0
    }

    pub fn ttl(&self) -> u8 {
        self.data()[8]
    }

    pub fn protocol(&self) -> IpProtocol {
        IpProtocol::from(self.data()[9])
    }

    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.data()[10], self.data()[11]])
    }

    pub fn src_addr(&self) -> Ipv4Addr {
        let d = self.data();
        Ipv4Addr::new(d[12], d[13], d[14], d[15])
    }

    pub fn dst_addr(&self) -> Ipv4Addr {
        let d = self.data();
        Ipv4Addr::new(d[16], d[17], d[18], d[19])
    }

    pub fn verify_header_checksum(&self) -> bool {
        checksum::verify(&self.data()[..self.header_len()])
    }

    /// Payload bytes: clamped to what is actually in the buffer even if the
    /// total-length field claims more.
    pub fn payload(&self) -> &[u8] {
        let start = self.header_len();
        let declared_end = usize::from(self.total_len()).max(start);
        let end = declared_end.min(self.data().len());
        &self.data()[start..end]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    fn data_mut(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    pub fn set_version_and_header_len(&mut self, header_len: usize) {
        self.data_mut()[0] = 0x40 | ((header_len / 4) as u8 & 0x0f);
    }

    pub fn set_total_len(&mut self, v: u16) {
        self.data_mut()[2..4].copy_from_slice(&v.to_be_bytes());
    }

    pub fn set_ident(&mut self, v: u16) {
        self.data_mut()[4..6].copy_from_slice(&v.to_be_bytes());
    }

    pub fn set_flags_and_frag_offset(&mut self, dont_fragment: bool, more_fragments: bool, offset_bytes: usize) {
        debug_assert_eq!(offset_bytes % 8, 0, "fragment offsets are 8-byte aligned");
        let units = (offset_bytes / 8) as u16;
        let mut b0 = ((units >> 8) as u8) & 0x1f;
        if dont_fragment {
            b0 |= 0x40;
        }
        if more_fragments {
            b0 |= 0x20;
        }
        self.data_mut()[6] = b0;
        self.data_mut()[7] = units as u8;
    }

    pub fn set_ttl(&mut self, v: u8) {
        self.data_mut()[8] = v;
    }

    /// Decrement TTL in place (used by simulated routers) and refresh the
    /// header checksum. Returns the new TTL.
    pub fn decrement_ttl(&mut self) -> u8 {
        let ttl = self.data()[8].saturating_sub(1);
        self.data_mut()[8] = ttl;
        self.fill_header_checksum();
        ttl
    }

    pub fn set_protocol(&mut self, p: IpProtocol) {
        self.data_mut()[9] = p.into();
    }

    pub fn set_src_addr(&mut self, a: Ipv4Addr) {
        self.data_mut()[12..16].copy_from_slice(&a.octets());
    }

    pub fn set_dst_addr(&mut self, a: Ipv4Addr) {
        self.data_mut()[16..20].copy_from_slice(&a.octets());
    }

    pub fn set_header_checksum(&mut self, v: u16) {
        self.data_mut()[10..12].copy_from_slice(&v.to_be_bytes());
    }

    pub fn fill_header_checksum(&mut self) {
        self.set_header_checksum(0);
        let hlen = self.header_len();
        let ck = checksum::checksum(&self.data()[..hlen]);
        self.set_header_checksum(ck);
    }

    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = self.header_len();
        let declared_end = usize::from(self.total_len()).max(start);
        let len = self.data().len();
        let end = declared_end.min(len);
        &mut self.data_mut()[start..end]
    }
}

/// High-level IPv4 header description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub protocol: IpProtocol,
    pub ttl: u8,
    pub ident: u16,
    pub dont_fragment: bool,
    pub more_fragments: bool,
    /// Fragment offset in bytes.
    pub frag_offset: usize,
    /// When set, the emitted total-length field is this value instead of the
    /// true length — the Table 3 "IP total length > actual length"
    /// malformation.
    pub total_len_override: Option<u16>,
}

impl Ipv4Repr {
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol) -> Self {
        Ipv4Repr {
            src,
            dst,
            protocol,
            ttl: 64,
            ident: 0,
            dont_fragment: true,
            more_fragments: false,
            frag_offset: 0,
            total_len_override: None,
        }
    }

    pub fn parse<T: AsRef<[u8]>>(pkt: &Ipv4Packet<T>) -> Ipv4Repr {
        Ipv4Repr {
            src: pkt.src_addr(),
            dst: pkt.dst_addr(),
            protocol: pkt.protocol(),
            ttl: pkt.ttl(),
            ident: pkt.ident(),
            dont_fragment: pkt.dont_fragment(),
            more_fragments: pkt.more_fragments(),
            frag_offset: pkt.frag_offset(),
            total_len_override: None,
        }
    }

    /// Serialize this header plus `payload` into a fresh datagram.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        self.emit_into(payload, &mut buf);
        buf
    }

    /// Serialize by appending to `out` — the allocation-free path used with
    /// a reusable or pooled buffer. Byte-identical to [`Ipv4Repr::emit`].
    pub fn emit_into(&self, payload: &[u8], out: &mut Vec<u8>) {
        let base = out.len();
        out.resize(base + HEADER_LEN, 0);
        out.extend_from_slice(payload);
        self.finish_in_place(base, out);
    }

    /// Fill in the header for a datagram assembled directly in `out`:
    /// the caller reserved `HEADER_LEN` zeroed bytes at `base` and appended
    /// the payload after them (possibly from several pieces — this is the
    /// scatter-gather variant of [`Ipv4Repr::emit_into`], byte-identical to
    /// it for the same concatenated payload).
    pub fn finish_in_place(&self, base: usize, out: &mut [u8]) {
        let payload_len = out.len() - base - HEADER_LEN;
        let mut pkt = Ipv4Packet::new_unchecked(&mut out[base..]);
        pkt.set_version_and_header_len(HEADER_LEN);
        let total = self.total_len_override.unwrap_or((HEADER_LEN + payload_len) as u16);
        pkt.set_total_len(total);
        pkt.set_ident(self.ident);
        pkt.set_flags_and_frag_offset(self.dont_fragment, self.more_fragments, self.frag_offset);
        pkt.set_ttl(self.ttl);
        pkt.set_protocol(self.protocol);
        pkt.set_src_addr(self.src);
        pkt.set_dst_addr(self.dst);
        pkt.fill_header_checksum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = Ipv4Repr {
            ttl: 37,
            ident: 0xbeef,
            ..Ipv4Repr::new(addr(1), addr(2), IpProtocol::Tcp)
        };
        let wire = repr.emit(b"hello");
        let pkt = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert_eq!(pkt.src_addr(), addr(1));
        assert_eq!(pkt.dst_addr(), addr(2));
        assert_eq!(pkt.ttl(), 37);
        assert_eq!(pkt.ident(), 0xbeef);
        assert_eq!(pkt.protocol(), IpProtocol::Tcp);
        assert_eq!(pkt.payload(), b"hello");
        assert!(pkt.verify_header_checksum());
        assert!(pkt.total_len_consistent());
        assert!(!pkt.is_fragment());
    }

    #[test]
    fn total_len_override_detected() {
        let repr = Ipv4Repr {
            total_len_override: Some(200),
            ..Ipv4Repr::new(addr(1), addr(2), IpProtocol::Tcp)
        };
        let wire = repr.emit(b"data");
        let pkt = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert!(!pkt.total_len_consistent());
        // Payload view clamps to the real buffer.
        assert_eq!(pkt.payload(), b"data");
    }

    #[test]
    fn fragment_fields_round_trip() {
        let repr = Ipv4Repr {
            dont_fragment: false,
            more_fragments: true,
            frag_offset: 1480,
            ..Ipv4Repr::new(addr(3), addr(4), IpProtocol::Udp)
        };
        let wire = repr.emit(&[0u8; 8]);
        let pkt = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert!(pkt.more_fragments());
        assert!(!pkt.dont_fragment());
        assert_eq!(pkt.frag_offset(), 1480);
        assert!(pkt.is_fragment());
    }

    #[test]
    fn decrement_ttl_keeps_checksum_valid() {
        let repr = Ipv4Repr {
            ttl: 3,
            ..Ipv4Repr::new(addr(1), addr(2), IpProtocol::Tcp)
        };
        let mut wire = repr.emit(b"x");
        let mut pkt = Ipv4Packet::new_unchecked(&mut wire[..]);
        assert_eq!(pkt.decrement_ttl(), 2);
        assert_eq!(pkt.decrement_ttl(), 1);
        assert_eq!(pkt.decrement_ttl(), 0);
        assert_eq!(pkt.decrement_ttl(), 0, "saturates at zero");
        let pkt = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert!(pkt.verify_header_checksum());
    }

    #[test]
    fn reject_short_and_bad_version() {
        assert_eq!(Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(), ParseError::Truncated);
        let repr = Ipv4Repr::new(addr(1), addr(2), IpProtocol::Tcp);
        let mut wire = repr.emit(b"");
        wire[0] = 0x60; // IPv6 version nibble
        assert_eq!(Ipv4Packet::new_checked(&wire[..]).unwrap_err(), ParseError::Unsupported);
    }
}
