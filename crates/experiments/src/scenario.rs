//! Vantage points and website populations.
//!
//! The paper measures from 11 vantage points in 9 cities across 3 ISPs
//! (§3.3) against 77 Alexa-top websites (one per AS), and — for the
//! inbound direction — from 4 points outside China against 33 Chinese
//! sites (§7). We reproduce the *structure*: the exact Table 2 middlebox
//! stacks, the Tor-filtering geography of §7.3, and a deterministic
//! synthetic website population whose diversity knobs (server kernel
//! versions, GFW device generations, path lengths, middleboxes, loss) are
//! calibrated to the paper's measured failure modes (see DESIGN.md,
//! "Mechanism → measured-rate calibration").

use intang_gfw::config::GfwConfig;
#[cfg(test)]
use intang_gfw::config::GfwGeneration;
use intang_gfw::CensorProfile;
use intang_middlebox::profiles::ClientSideProfile;
use intang_netsim::SimRng;
use intang_packet::frag::OverlapPolicy;
use intang_tcpstack::reasm::SegmentOverlapPolicy;
use intang_tcpstack::StackProfile;
use std::net::Ipv4Addr;

/// One measurement client.
#[derive(Debug, Clone)]
pub struct VantagePoint {
    pub name: &'static str,
    pub city: &'static str,
    pub isp: &'static str,
    pub profile: ClientSideProfile,
    pub addr: Ipv4Addr,
    /// Tor-filtering GFW devices on paths from here (§7.3: absent from the
    /// four Northern-China vantage points).
    pub tor_filtered: bool,
    /// Hops from the client to its provider edge.
    pub access_hops: u8,
    /// The client sits outside China (inbound measurement, §7): the censor
    /// is near the destination servers.
    pub abroad: bool,
}

impl VantagePoint {
    /// The paper's 11 vantage points: 6 Aliyun + 3 QCloud (cloud) and the
    /// two China Unicom home networks in Shijiazhuang and Tianjin.
    pub fn inside_china() -> Vec<VantagePoint> {
        use ClientSideProfile::*;
        let spec: [(&str, &str, &str, ClientSideProfile, bool); 11] = [
            ("aliyun-bj", "Beijing", "Aliyun", Aliyun, false),
            ("aliyun-sh", "Shanghai", "Aliyun", Aliyun, true),
            ("aliyun-gz", "Guangzhou", "Aliyun", Aliyun, true),
            ("aliyun-sz", "Shenzhen", "Aliyun", Aliyun, true),
            ("aliyun-hz", "Hangzhou", "Aliyun", Aliyun, true),
            ("aliyun-qd", "Qingdao", "Aliyun", Aliyun, false),
            ("qcloud-bj", "Beijing", "QCloud", QCloud, false),
            ("qcloud-zjk", "Zhangjiakou", "QCloud", QCloud, false),
            ("qcloud-sh", "Shanghai", "QCloud", QCloud, true),
            ("unicom-sjz", "Shijiazhuang", "China Unicom", UnicomShijiazhuang, true),
            ("unicom-tj", "Tianjin", "China Unicom", UnicomTianjin, true),
        ];
        spec.iter()
            .enumerate()
            .map(|(i, (name, city, isp, profile, tor_filtered))| VantagePoint {
                name,
                city,
                isp,
                profile: *profile,
                addr: Ipv4Addr::new(10, 10, i as u8 + 1, 2),
                tor_filtered: *tor_filtered,
                access_hops: 2 + (i as u8 % 3),
                abroad: false,
            })
            .collect()
    }

    /// The 4 outside-China vantage points of §7 (EC2: US, UK, DE, JP) —
    /// clean client-side paths, long hauls.
    pub fn outside_china() -> Vec<VantagePoint> {
        ["ec2-us", "ec2-uk", "ec2-de", "ec2-jp"]
            .iter()
            .enumerate()
            .map(|(i, name)| VantagePoint {
                name,
                city: "abroad",
                isp: "EC2",
                profile: ClientSideProfile::Clean,
                addr: Ipv4Addr::new(10, 20, i as u8 + 1, 2),
                tor_filtered: true, // inbound paths always cross filtering borders
                access_hops: 3,
                abroad: true,
            })
            .collect()
    }
}

/// Censor-side hardening knobs for the §8 arms-race experiments: checks
/// the real GFW does *not* perform today, turned on to see which evasion
/// strategies survive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CensorHardening {
    pub validate_checksum: bool,
    pub check_md5: bool,
    pub check_ack: bool,
    pub check_timestamp: bool,
}

impl CensorHardening {
    pub fn all() -> CensorHardening {
        CensorHardening {
            validate_checksum: true,
            check_md5: true,
            check_ack: true,
            check_timestamp: true,
        }
    }
}

/// Which censor model populates a path's devices.
#[derive(Debug, Clone, Default)]
pub enum CensorModel {
    /// The hard-coded [`GfwConfig::old`]/[`GfwConfig::evolved`]
    /// constructors — the historical behavior.
    #[default]
    Builtin,
    /// Profile-compiled prior/evolved slot configs. The per-site overrides
    /// (device mix, segment overlap, resync probabilities, hardening)
    /// still apply on top, so profiles that reproduce the builtins stay
    /// byte-identical to them across the whole sweep. Note the site's
    /// calibrated resync draws overwrite the evolved slot's resync knobs —
    /// resync heterogeneity from `[heterogeneity]` is only fully visible
    /// in `Custom` mode.
    Profiles { prior: GfwConfig, evolved: GfwConfig },
    /// A single profile-compiled censor replacing the per-site GFW device
    /// mix entirely (the profile is authoritative; only §8 hardening still
    /// ORs in). This is what `--censor-profile` selects for a whole sweep.
    Custom(GfwConfig),
}

/// One target website and the path characteristics toward it.
#[derive(Debug, Clone)]
pub struct Website {
    pub name: String,
    pub addr: Ipv4Addr,
    pub alexa_rank: u32,
    pub server_profile: StackProfile,
    /// IP fragment overlap preference of the server's stack (§3.4 notes
    /// servers sometimes keep the junk "just like the GFW").
    pub server_ip_overlap: OverlapPolicy,
    /// GFW device generations deployed on this path.
    pub old_device: bool,
    pub evolved_device: bool,
    /// The evolved devices' TCP-segment overlap preference on this path
    /// (Khattak-era last-wins vs robust first-wins).
    pub gfw_seg_overlap: SegmentOverlapPolicy,
    /// Sticky probability that an RST resynchronizes rather than tears
    /// down (Hypothesized New Behavior 3).
    pub rst_resync_prob: f64,
    pub rst_resync_prob_handshake: f64,
    /// Hops: client edge → GFW tap, and GFW tap → server.
    pub core_hops: u8,
    pub server_hops: u8,
    /// A sequence-checking firewall sits in front of the server (§3.4).
    pub server_seqfw: bool,
    /// A connection-tracking firewall two hops before the server: normally
    /// outside the reach of TTL-scoped insertions, but route shrinkage puts
    /// it in range and a traversing insertion RST silently kills the flow
    /// (the paper's Failure-1 "hitting server-side middleboxes", §7.1).
    pub server_conntrack: bool,
    /// That firewall validates TCP checksums (and so drops corrupt
    /// insertion junk harmlessly instead of accepting it).
    pub seqfw_validates_checksum: bool,
    /// The server is flaky and never answers (background Failure 1 noise
    /// present even with no strategy, §3.4).
    pub flaky_server: bool,
    /// An unattributed middle-path filter drops flag-less segments (the
    /// bulk of Table 1's no-flag Failure 2 that Table 2's client-side
    /// probing cannot explain).
    pub path_drops_noflag: bool,
    /// §8 arms-race hardening applied to the censor on this path.
    pub hardening: CensorHardening,
    /// Which censor model the path's devices are built from.
    pub censor: CensorModel,
    /// Per-link loss probability.
    pub loss: f64,
    /// One-way core latency in milliseconds.
    pub latency_ms: u64,
}

impl Website {
    /// Build the censor configuration(s) for this path.
    pub fn gfw_configs(&self) -> Vec<GfwConfig> {
        let mut v = Vec::new();
        match &self.censor {
            CensorModel::Builtin => {
                if self.old_device {
                    let mut c = GfwConfig::old();
                    c.segment_overlap = SegmentOverlapPolicy::LastWins;
                    v.push(c);
                }
                if self.evolved_device {
                    let mut c = GfwConfig::evolved();
                    c.segment_overlap = self.gfw_seg_overlap;
                    c.rst_resync_prob = self.rst_resync_prob;
                    c.rst_resync_prob_handshake = self.rst_resync_prob_handshake;
                    v.push(c);
                }
            }
            CensorModel::Profiles { prior, evolved } => {
                // Same slot shape and the same per-site overrides as the
                // builtin arm, applied to the profile-compiled configs.
                if self.old_device {
                    let mut c = prior.clone();
                    c.segment_overlap = SegmentOverlapPolicy::LastWins;
                    v.push(c);
                }
                if self.evolved_device {
                    let mut c = evolved.clone();
                    c.segment_overlap = self.gfw_seg_overlap;
                    c.rst_resync_prob = self.rst_resync_prob;
                    c.rst_resync_prob_handshake = self.rst_resync_prob_handshake;
                    v.push(c);
                }
            }
            CensorModel::Custom(cfg) => v.push(cfg.clone()),
        }
        for c in &mut v {
            c.validate_checksum |= self.hardening.validate_checksum;
            c.check_md5 |= self.hardening.check_md5;
            c.check_ack |= self.hardening.check_ack;
            c.check_timestamp |= self.hardening.check_timestamp;
        }
        v
    }
}

/// Deterministically generate a website population.
///
/// `inbound` switches to the outside→China shape of §7: short GFW→server
/// gaps (devices near or co-located with the server) that make TTL scoping
/// hard.
pub fn generate_websites(count: usize, master_seed: u64, inbound: bool) -> Vec<Website> {
    let mut rng = SimRng::seed_from(master_seed);
    (0..count)
        .map(|i| {
            let r = rng.next_u32();
            // Server kernel mix: mostly modern, a tail of older stacks
            // (§5.3 cross-validation + §3.4 pre-3.8 oddity).
            let server_profile = match r % 100 {
                0..=64 => StackProfile::linux_4_4(),
                65..=76 => StackProfile::linux_4_0(),
                77..=91 => StackProfile::linux_3_14(),
                92..=94 => StackProfile::linux_2_6_34(),
                95..=96 => StackProfile::linux_2_4_37(),
                _ => StackProfile::linux_pre_3_8(),
            };
            // GFW generation mix: a small share of paths still run the old
            // model alone (why TCB-creation still occasionally works,
            // Table 1); most are evolved; some see both.
            let gen_draw = rng.next_u32() % 100;
            let (old_device, evolved_device) = if gen_draw < 4 {
                (true, false)
            } else if gen_draw < 85 {
                (false, true)
            } else {
                (true, true)
            };
            let gfw_seg_overlap = if rng.chance(0.30) {
                SegmentOverlapPolicy::LastWins
            } else {
                SegmentOverlapPolicy::FirstWins
            };
            let server_hops = if inbound {
                // Inbound: GFW devices within a few hops of the server,
                // sometimes co-located (§7.1).
                if rng.chance(0.2) {
                    1 // effectively co-located: TTL scoping hopeless
                } else {
                    2 + (rng.next_u32() % 4) as u8 // 2..=5
                }
            } else {
                3 + (rng.next_u32() % 4) as u8 // 3..=6
            };
            Website {
                name: format!("site-{i}.example"),
                addr: Ipv4Addr::new(93, 184, (i / 200) as u8 + 1, (i % 200) as u8 + 1),
                alexa_rank: 41 + (i as u32) * 27 % 2050,
                server_profile,
                server_ip_overlap: if rng.chance(0.8) {
                    OverlapPolicy::LastWins
                } else {
                    OverlapPolicy::FirstWins
                },
                old_device,
                evolved_device,
                gfw_seg_overlap,
                rst_resync_prob: 0.18 + f64::from(rng.next_u32() % 100) / 1000.0, // 0.18..0.28
                rst_resync_prob_handshake: 0.8,
                core_hops: 5 + (rng.next_u32() % 6) as u8, // 5..=10
                server_hops,
                server_seqfw: rng.chance(0.07),
                server_conntrack: rng.chance(0.10),
                seqfw_validates_checksum: rng.chance(0.8),
                flaky_server: rng.chance(0.005),
                path_drops_noflag: rng.chance(0.42),
                hardening: CensorHardening::default(),
                censor: CensorModel::Builtin,
                loss: 0.002 + f64::from(rng.next_u32() % 10) / 1000.0, // 0.2%..1.2%
                latency_ms: 10 + u64::from(rng.next_u32() % 40),
            }
        })
        .collect()
}

/// A full measurement scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub vantage_points: Vec<VantagePoint>,
    pub websites: Vec<Website>,
    pub master_seed: u64,
}

impl Scenario {
    /// §3.3: 11 vantage points × 77 websites.
    pub fn paper_inside(master_seed: u64) -> Scenario {
        Scenario {
            vantage_points: VantagePoint::inside_china(),
            websites: generate_websites(77, master_seed, false),
            master_seed,
        }
    }

    /// §7: 4 outside vantage points × 33 Chinese websites.
    pub fn paper_outside(master_seed: u64) -> Scenario {
        Scenario {
            vantage_points: VantagePoint::outside_china(),
            websites: generate_websites(33, master_seed ^ 0xabcd, true),
            master_seed,
        }
    }

    /// A small smoke-test scenario for fast tests.
    pub fn smoke(master_seed: u64) -> Scenario {
        let mut s = Scenario::paper_inside(master_seed);
        s.vantage_points.truncate(3);
        s.websites.truncate(5);
        s
    }

    /// Replace the builtin censor constructors with profile-compiled
    /// configs filling the same prior/evolved device slots. Each site's
    /// devices are compiled per-device (the `[heterogeneity]` hooks), with
    /// the device seed derived by hashing the site name — never by drawing
    /// from the scenario RNG, which would perturb every seeded draw
    /// downstream and break byte-identity with the builtin path.
    pub fn with_profiles(mut self, prior: &CensorProfile, evolved: &CensorProfile) -> Result<Scenario, String> {
        for w in &mut self.websites {
            let seed = site_device_seed(&w.name, self.master_seed);
            w.censor = CensorModel::Profiles {
                prior: prior.compile_for_device(seed)?,
                // The evolved slot is a different physical device on the
                // same path: a distinct heterogeneity stream.
                evolved: evolved.compile_for_device(seed ^ 1)?,
            };
        }
        Ok(self)
    }

    /// Replace every site's GFW device mix with one profile-compiled
    /// censor (per-device heterogeneity still applies). This is the
    /// `--censor-profile` semantics: the profile is authoritative.
    pub fn with_custom_censor(mut self, profile: &CensorProfile) -> Result<Scenario, String> {
        for w in &mut self.websites {
            let seed = site_device_seed(&w.name, self.master_seed);
            w.censor = CensorModel::Custom(profile.compile_for_device(seed)?);
        }
        Ok(self)
    }
}

/// Per-site device seed for profile heterogeneity: a hash of the site name
/// and master seed, deliberately not an RNG draw (see `with_profiles`).
fn site_device_seed(site: &str, master_seed: u64) -> u64 {
    use std::hash::Hasher;
    let mut h = intang_packet::fxhash::FxHasher::default();
    h.write(site.as_bytes());
    h.write_u64(master_seed);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_vantage_points_match_table2_fractions() {
        let vps = VantagePoint::inside_china();
        assert_eq!(vps.len(), 11);
        let aliyun = vps.iter().filter(|v| v.profile == ClientSideProfile::Aliyun).count();
        let qcloud = vps.iter().filter(|v| v.profile == ClientSideProfile::QCloud).count();
        assert_eq!(aliyun, 6, "Aliyun(6/11) per Table 2");
        assert_eq!(qcloud, 3, "QCloud(3/11) per Table 2");
        // 9 distinct cities.
        let mut cities: Vec<_> = vps.iter().map(|v| v.city).collect();
        cities.sort();
        cities.dedup();
        assert_eq!(cities.len(), 9);
        // §7.3: exactly 4 Tor-unfiltered points in 3 cities, all northern.
        let unfiltered: Vec<_> = vps.iter().filter(|v| !v.tor_filtered).collect();
        assert_eq!(unfiltered.len(), 4);
        let mut ucities: Vec<_> = unfiltered.iter().map(|v| v.city).collect();
        ucities.sort();
        ucities.dedup();
        assert_eq!(ucities, vec!["Beijing", "Qingdao", "Zhangjiakou"]);
        // Distinct client addresses.
        let mut addrs: Vec<_> = vps.iter().map(|v| v.addr).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 11);
    }

    #[test]
    fn website_population_is_deterministic_and_diverse() {
        let a = generate_websites(77, 42, false);
        let b = generate_websites(77, 42, false);
        assert_eq!(a.len(), 77);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.core_hops, y.core_hops);
            assert_eq!(x.old_device, y.old_device);
        }
        let old_only = a.iter().filter(|w| w.old_device && !w.evolved_device).count();
        assert!((1..=9).contains(&old_only), "a small share of old-only paths, got {old_only}");
        let evolved = a.iter().filter(|w| w.evolved_device).count();
        assert!(evolved > 60);
        // Distinct addresses (one per AS, §3.3).
        let mut addrs: Vec<_> = a.iter().map(|w| w.addr).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 77);
    }

    #[test]
    fn inbound_paths_have_short_gfw_server_gaps() {
        let inbound = generate_websites(33, 7, true);
        let outbound = generate_websites(77, 7, false);
        assert!(inbound.iter().all(|w| w.server_hops <= 5));
        assert!(inbound.iter().any(|w| w.server_hops <= 1), "some co-located censors inbound");
        assert!(outbound.iter().all(|w| w.server_hops >= 3));
    }

    #[test]
    fn builtin_profiles_reproduce_builtin_gfw_configs_exactly() {
        // The whole point of the profile layer: a scenario driven by the
        // checked-in gfw_prior/gfw_evolved profiles builds *equal* censor
        // configs for every site, so the sweeps stay byte-identical.
        let s = Scenario::smoke(2017);
        let p = s
            .clone()
            .with_profiles(&CensorProfile::gfw_prior(), &CensorProfile::gfw_evolved())
            .unwrap();
        for (a, b) in s.websites.iter().zip(&p.websites) {
            assert_eq!(a.gfw_configs(), b.gfw_configs(), "site {}", a.name);
        }
    }

    #[test]
    fn custom_censor_replaces_the_device_mix() {
        let s = Scenario::smoke(2017).with_custom_censor(&CensorProfile::turkmenistan()).unwrap();
        for w in &s.websites {
            let cfgs = w.gfw_configs();
            assert_eq!(cfgs.len(), 1, "one authoritative censor per path");
            assert!(cfgs[0].inject_blockpage);
            assert!(cfgs[0].censor_responses);
        }
    }

    #[test]
    fn heterogeneous_profiles_vary_across_sites_deterministically() {
        let mut p = CensorProfile::gfw_evolved();
        p.het_overload_jitter = 0.02;
        let a = Scenario::smoke(2017).with_custom_censor(&p).unwrap();
        let b = Scenario::smoke(2017).with_custom_censor(&p).unwrap();
        let probs: Vec<f64> = a.websites.iter().map(|w| w.gfw_configs()[0].overload_miss_prob).collect();
        let again: Vec<f64> = b.websites.iter().map(|w| w.gfw_configs()[0].overload_miss_prob).collect();
        assert_eq!(probs, again, "device perturbation is a pure function of the seed");
        let mut distinct = probs.clone();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        assert!(distinct.len() > 1, "different sites draw different devices");
    }

    #[test]
    fn gfw_configs_reflect_device_mix() {
        let mut w = generate_websites(1, 1, false).remove(0);
        w.old_device = true;
        w.evolved_device = true;
        let cfgs = w.gfw_configs();
        assert_eq!(cfgs.len(), 2);
        assert_eq!(cfgs[0].generation, GfwGeneration::Old);
        assert_eq!(cfgs[1].generation, GfwGeneration::Evolved);
    }
}
