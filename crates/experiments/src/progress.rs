//! Live sweep console: a single self-rewriting stderr line tracking a
//! sweep's cells done, ETA, per-worker busy fraction, and the streaming
//! merge's reorder-window high-water.
//!
//! Purely observational — workers update a few atomics per *cell* (never
//! per event), the line is throttled to a few redraws per second, and
//! everything is written to stderr so piped experiment output (tables,
//! JSONL) is untouched. Enabled per run with `--progress` or
//! `INTANG_PROGRESS=1`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Minimum wall-clock gap between redraws (the final cell always draws).
const REDRAW_EVERY: Duration = Duration::from_millis(200);

/// Shared progress state for one sweep (or a labelled group of sweeps).
#[derive(Debug)]
pub struct Progress {
    label: String,
    total_cells: usize,
    workers: usize,
    done: AtomicUsize,
    /// Sum of per-cell wall times across all workers, in nanoseconds —
    /// `busy / (workers · elapsed)` is the fleet utilization.
    busy_nanos: AtomicU64,
    merge_high_water: AtomicUsize,
    started: Instant,
    last_draw: Mutex<Instant>,
}

impl Progress {
    /// Begin tracking `total_cells` cells on `workers` workers under a
    /// display label (e.g. `"table1/direct"`).
    pub fn start(label: &str, total_cells: usize, workers: usize) -> Arc<Progress> {
        let now = Instant::now();
        Arc::new(Progress {
            label: label.to_string(),
            total_cells,
            workers: workers.max(1),
            done: AtomicUsize::new(0),
            busy_nanos: AtomicU64::new(0),
            merge_high_water: AtomicUsize::new(0),
            started: now,
            // Backdate so the very first finished cell draws immediately.
            last_draw: Mutex::new(now.checked_sub(REDRAW_EVERY).unwrap_or(now)),
        })
    }

    /// A worker finished (and merged) one cell that took `cell_wall` of
    /// wall-clock; `high_water` is the merge's current reorder-window
    /// high-water mark.
    pub fn cell_done(&self, cell_wall: Duration, high_water: usize) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        self.busy_nanos.fetch_add(cell_wall.as_nanos() as u64, Ordering::Relaxed);
        self.merge_high_water.fetch_max(high_water, Ordering::Relaxed);
        let final_cell = done >= self.total_cells;
        {
            let Ok(mut last) = self.last_draw.lock() else { return };
            if !final_cell && last.elapsed() < REDRAW_EVERY {
                return;
            }
            *last = Instant::now();
        }
        eprint!("\r{}", self.render(done));
        if final_cell {
            eprintln!();
        }
    }

    /// The console line for `done` finished cells (no carriage control).
    fn render(&self, done: usize) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let eta = if done > 0 && done < self.total_cells {
            let per_cell = elapsed / done as f64;
            format!("{:.1}s", per_cell * (self.total_cells - done) as f64)
        } else {
            "0.0s".to_string()
        };
        let busy = self.busy_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let capacity = elapsed * self.workers as f64;
        let busy_pct = if capacity > 0.0 { 100.0 * busy / capacity } else { 0.0 };
        format!(
            "[{}] cells {}/{}  eta {}  busy {:>3.0}%/{}w  merge-hw {}",
            self.label,
            done,
            self.total_cells,
            eta,
            busy_pct.min(100.0),
            self.workers,
            self.merge_high_water.load(Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_reports_cells_and_high_water() {
        let p = Progress::start("t1/direct", 8, 2);
        p.busy_nanos.store(1_000, Ordering::Relaxed);
        p.merge_high_water.store(3, Ordering::Relaxed);
        let line = p.render(5);
        assert!(line.contains("[t1/direct]"), "{line}");
        assert!(line.contains("cells 5/8"), "{line}");
        assert!(line.contains("merge-hw 3"), "{line}");
        assert!(line.contains("/2w"), "{line}");
    }

    #[test]
    fn cell_done_saturates_and_counts() {
        let p = Progress::start("x", 2, 1);
        // Draws go to stderr; just verify the counters advance.
        p.cell_done(Duration::from_millis(1), 1);
        p.cell_done(Duration::from_millis(1), 4);
        assert_eq!(p.done.load(Ordering::Relaxed), 2);
        assert_eq!(p.merge_high_water.load(Ordering::Relaxed), 4);
    }
}
