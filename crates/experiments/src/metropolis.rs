//! Metropolis: one shared world, very many concurrent flows.
//!
//! Where [`crate::trial`] builds one simulation per fetch, this module
//! builds **one** simulation hosting the whole population: a seeded load
//! generator plans every flow up front (arrival time, client address,
//! site, ISN, keyword, per-flow INTANG strategy), the
//! [`intang_apps::metro`] multiplexers host the endpoints, and a single
//! GFW tap — one shared TCB table, one shared blacklist — watches them
//! all. That sharing is the point: one flow's detection blacklists a
//! `(src, dst)` pair and resets *other* flows on it, capacity pressure
//! evicts TCBs and degrades detection, and resync churn from many flows
//! counts as storms.
//!
//! Determinism: the event loop is strictly serial. "Workers" here are
//! post-run aggregation threads over the per-flow result grid, one shard
//! at a time, folded in shard-index order — so any worker count produces
//! byte-identical [`MetroRun`]s (asserted by `tests/determinism.rs`).

use crate::runner::MinMaxAvg;
use intang_apps::metro::{FlowOutcome, FlowResult, FlowSpec, MetroClients, MetroHandle, MetroServers};
use intang_core::{IntangConfig, IntangElement, IntangHandle, StrategyKind};
use intang_gfw::{EvictionPolicy, GfwConfig, GfwElement, GfwHandle};
use intang_netsim::rng::SimRng;
use intang_netsim::{Duration, Instant, Link, Simulation};
use intang_telemetry::{MetricsSheet, SeriesSheet};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Total client→server hop count of the metropolis path (2 on the censor
/// side + 3 on the server side); seeded into the INTANG shim so
/// TTL-scoped insertions cross the censor and die before the servers
/// without a probe storm per site.
const PATH_HOPS: u8 = 5;

/// Everything defining one metropolis run.
#[derive(Debug, Clone)]
pub struct MetroParams {
    /// Flows to spawn over the run.
    pub flows: u32,
    pub seed: u64,
    /// Shard count for per-flow state (aggregation workers sweep shards).
    pub shards: u32,
    /// Client address pool size (source ports are per-address, so this
    /// bounds flows-per-address; [`MetroParams::new`] scales it).
    pub clients: u32,
    /// Origin-site pool size (kept small: the shim's hop cache holds 64).
    pub sites: u32,
    /// Censor TCB-table capacity and eviction policy.
    pub max_tcbs: usize,
    pub eviction: EvictionPolicy,
    /// Mean flow inter-arrival time in microseconds (uniform on
    /// `[0, 2·mean]`).
    pub mean_interarrival_us: u64,
    /// Probability a flow's request carries the sensitive keyword.
    pub keyword_prob: f64,
    /// Upper bound of the uniform ESTABLISHED→request delay draw.
    pub max_request_delay_us: u64,
    /// Event horizon: spawn window plus drain time.
    pub horizon: Instant,
}

impl MetroParams {
    /// Defaults scaled to `flows`: enough client addresses that no
    /// address exhausts its port range, and a horizon covering the
    /// arrival window plus a 25 s drain.
    pub fn new(flows: u32, seed: u64) -> MetroParams {
        let mean_interarrival_us = 200;
        let spawn_window = u64::from(flows) * mean_interarrival_us;
        MetroParams {
            flows,
            seed,
            shards: 8,
            // Scale the address pool with the population: too few client
            // addresses and every (src, dst) pair is blacklisted within
            // the spawn window, collapsing the world into pure collateral.
            clients: (flows / 16).clamp(8, 4_096),
            sites: 8,
            max_tcbs: 65_536,
            eviction: EvictionPolicy::Oldest,
            mean_interarrival_us,
            keyword_prob: 0.5,
            max_request_delay_us: 50_000,
            horizon: Instant(spawn_window + 25_000_000),
        }
    }
}

/// The generated world: address pools, start-sorted flow specs, and each
/// flow's preset strategy draw.
pub struct MetroWorld {
    pub clients: Vec<Ipv4Addr>,
    pub sites: Vec<Ipv4Addr>,
    pub specs: Vec<FlowSpec>,
    pub strategies: Vec<StrategyKind>,
}

/// Deterministic load plan: every draw comes from one SplitMix stream
/// seeded by `params.seed`, so the same params always produce the same
/// world regardless of shard or worker count.
pub fn generate_world(p: &MetroParams) -> MetroWorld {
    let mut rng = SimRng::seed_from(p.seed ^ 0x4d45_5452_4f50_4f4c); // "METROPOL"
    let clients: Vec<Ipv4Addr> = (0..p.clients.max(1))
        .map(|i| Ipv4Addr::new(10, 1, (i >> 8) as u8, (i & 0xff) as u8))
        .collect();
    let sites: Vec<Ipv4Addr> = (0..p.sites.clamp(1, 64))
        .map(|i| Ipv4Addr::new(203, 0, 113, (i + 1) as u8))
        .collect();
    let pool = StrategyKind::adaptive_pool();
    let mut specs = Vec::with_capacity(p.flows as usize);
    let mut strategies = Vec::with_capacity(p.flows as usize);
    let mut t = 0u64;
    for _ in 0..p.flows {
        t += rng.range_u64(0, 2 * p.mean_interarrival_us + 1);
        specs.push(FlowSpec {
            start: Instant(t),
            client: rng.index(clients.len()) as u32,
            site: rng.index(sites.len()) as u32,
            isn: rng.next_u32(),
            keyword: rng.chance(p.keyword_prob),
            request_delay: Duration::from_micros(rng.range_u64(0, p.max_request_delay_us + 1)),
        });
        // One draw in five runs bare: those keyword flows are the ones the
        // censor detects, and their blacklist entries are what makes
        // cross-flow collateral observable in the shared world.
        let k = rng.index(pool.len() + 1);
        strategies.push(if k == pool.len() { StrategyKind::NoStrategy } else { pool[k] });
    }
    MetroWorld {
        clients,
        sites,
        specs,
        strategies,
    }
}

/// Per-shard fold of the flow-result grid (pure function of the shard's
/// rows — identical whichever worker computes it).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardSummary {
    pub flows: u64,
    pub succeeded: u64,
    pub reset: u64,
    pub stalled: u64,
    pub pending: u64,
    pub latency_sum_us: u64,
    pub latency_min_us: u64,
    pub latency_max_us: u64,
}

impl ShardSummary {
    fn fold(&mut self, r: &FlowResult) {
        self.flows += 1;
        match r.outcome {
            FlowOutcome::Success => {
                self.succeeded += 1;
                self.latency_sum_us += r.latency_us;
                self.latency_max_us = self.latency_max_us.max(r.latency_us);
                self.latency_min_us = if self.latency_min_us == 0 {
                    r.latency_us
                } else {
                    self.latency_min_us.min(r.latency_us)
                };
            }
            FlowOutcome::Reset => self.reset += 1,
            FlowOutcome::Stalled => self.stalled += 1,
            FlowOutcome::Pending => self.pending += 1,
        }
    }
}

/// Aggregate the outcome grid shard by shard on `workers` threads. Each
/// shard's summary is a pure function of that shard's rows and lands at
/// its own index, so the result is byte-identical for any `workers >= 1`.
pub fn aggregate_shards(results: &[FlowResult], shards: u32, workers: usize) -> Vec<ShardSummary> {
    let shards = shards.max(1) as usize;
    let mut out = vec![ShardSummary::default(); shards];
    let workers = workers.max(1).min(shards);
    if workers == 1 {
        for r in results {
            out[r.shard as usize].fold(r);
        }
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let computed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let s = cursor.fetch_add(1, Ordering::Relaxed);
                        if s >= shards {
                            break;
                        }
                        let mut sum = ShardSummary::default();
                        for r in results.iter().filter(|r| r.shard as usize == s) {
                            sum.fold(r);
                        }
                        mine.push((s, sum));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard aggregation worker panicked"))
            .collect::<Vec<_>>()
    });
    for (s, sum) in computed {
        out[s] = sum;
    }
    out
}

/// Min/max/avg of mean per-flow success latency across shards, with
/// success-free shards surfaced via [`MinMaxAvg::empty`] rather than
/// folded in as zeros (the PR-2 empty-cell convention).
pub fn shard_latency_stats(shards: &[ShardSummary]) -> MinMaxAvg {
    let empty = shards.iter().filter(|s| s.succeeded == 0).count();
    let vals: Vec<f64> = shards
        .iter()
        .filter(|s| s.succeeded > 0)
        .map(|s| s.latency_sum_us as f64 / s.succeeded as f64)
        .collect();
    if vals.is_empty() {
        return MinMaxAvg {
            min: 0.0,
            max: 0.0,
            avg: 0.0,
            empty,
        };
    }
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let avg = vals.iter().sum::<f64>() / vals.len() as f64;
    MinMaxAvg { min, max, avg, empty }
}

/// Everything a metropolis run reports.
pub struct MetroRun {
    /// Per-flow outcome grid, indexed by flow id.
    pub results: Vec<FlowResult>,
    /// `(spawned, succeeded, reset, stalled)`.
    pub counts: (u64, u64, u64, u64),
    /// Per-shard summaries in shard order.
    pub shards: Vec<ShardSummary>,
    /// Simulator events processed.
    pub events: u64,
    /// Cross-flow interference counters from the shared censor.
    pub collateral_resets: u64,
    pub tcbs_evicted: u64,
    pub resync_storms: u64,
    /// Full merged metrics sheet (every element on the path).
    pub metrics: MetricsSheet,
    /// Gauge series when series telemetry was enabled.
    pub series: Option<Box<SeriesSheet>>,
    /// Per-flow `(time, seq)` ordering regressions — must be zero.
    pub order_violations: u64,
    /// Simcheck violations observed during the run (0 when disabled).
    pub violations: u64,
}

/// Live handles of an assembled metropolis world (exposed so tests can
/// poke at the censor or the outcome grid mid-run).
pub struct MetroParts {
    pub metro: MetroHandle,
    pub intang: IntangHandle,
    pub gfw: GfwHandle,
}

/// Build the metropolis simulation without running it.
pub fn build_metropolis(p: &MetroParams, world: &MetroWorld) -> (Simulation, MetroParts) {
    let mut sim = Simulation::new(p.seed);

    // The INTANG shim fronts every client address; per-flow strategy
    // state is keyed by four-tuple and preset from the world's draws.
    let cfg = IntangConfig {
        strategy: None,
        measure_hops: true,
        prefer_ttl: true,
        ..IntangConfig::default()
    };
    let (intang_el, intang) = IntangElement::new(world.clients[0], cfg);
    for site in &world.sites {
        intang.seed_hops(*site, PATH_HOPS);
    }

    // [0] every client flow.
    let (mut clients_el, metro) = MetroClients::new(world.clients.clone(), world.sites.clone(), world.specs.clone(), p.shards);
    for (tuple, kind) in clients_el.tuples().iter().zip(&world.strategies) {
        intang.preset_strategy(*tuple, *kind);
    }
    let shim = intang.clone();
    clients_el.set_retire_hook(Box::new(move |tuple| shim.retire_flow(tuple)));
    let first_start = world.specs.first().map_or(Instant::ZERO, |s| s.start);
    let cidx = sim.add_element(Box::new(clients_el));

    // [1] the shim, directly on the client side.
    sim.add_link(Link::new(Duration::from_micros(50), 0));
    sim.add_element(Box::new(intang_el));

    // [2] the censor tap at the border (2 hops out).
    sim.add_link(Link::new(Duration::from_millis(1), 2).with_router_base(Ipv4Addr::new(172, 16, 2, 0)));
    let mut gcfg = GfwConfig::evolved();
    gcfg.max_tcbs = p.max_tcbs;
    gcfg.eviction = p.eviction;
    let (gfw_el, gfw) = GfwElement::labeled(gcfg, "GFW");
    sim.add_element(Box::new(gfw_el));

    // [3] every origin site (3 more hops; TTL-scoped insertions with the
    // seeded PATH_HOPS estimate die on this link).
    sim.add_link(Link::new(Duration::from_millis(2), 3).with_router_base(Ipv4Addr::new(172, 16, 3, 0)));
    sim.add_element(Box::new(MetroServers::new(world.sites.clone())));

    MetroClients::bootstrap(&mut sim, cidx, first_start, p.horizon);
    (sim, MetroParts { metro, intang, gfw })
}

/// Run a metropolis world to its horizon and aggregate with `workers`
/// shard-sweep threads.
pub fn run_metropolis_with_workers(p: &MetroParams, workers: usize) -> MetroRun {
    let sc = intang_simcheck::enabled();
    if sc {
        intang_simcheck::begin_trial(p.seed);
        let _ = intang_simcheck::take_violations();
    }
    let world = generate_world(p);
    let (mut sim, parts) = build_metropolis(p, &world);
    let events = sim.run_until(p.horizon);

    let mut metrics = MetricsSheet::new();
    sim.export_metrics(&mut metrics);
    let series = sim.take_series();
    let violations = if sc { intang_simcheck::take_violations().len() as u64 } else { 0 };

    let results = parts.metro.results();
    let shards = aggregate_shards(&results, p.shards, workers);
    let (spawned, succeeded, reset, stalled) = parts.metro.counts();
    MetroRun {
        results,
        counts: (spawned, succeeded, reset, stalled),
        shards,
        events,
        collateral_resets: parts.gfw.blacklist_collateral_resets(),
        tcbs_evicted: parts.gfw.tcbs_evicted(),
        resync_storms: parts.gfw.resync_storms(),
        metrics,
        series,
        order_violations: parts.metro.order_violations(),
        violations,
    }
}

/// Serial-aggregation convenience wrapper.
pub fn run_metropolis(p: &MetroParams) -> MetroRun {
    run_metropolis_with_workers(p, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_generation_is_deterministic_and_start_sorted() {
        let p = MetroParams::new(500, 7);
        let a = generate_world(&p);
        let b = generate_world(&p);
        assert_eq!(a.specs.len(), 500);
        assert!(a.specs.windows(2).all(|w| w[0].start <= w[1].start));
        for (x, y) in a.specs.iter().zip(&b.specs) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        assert_eq!(a.strategies, b.strategies);
    }

    #[test]
    fn small_world_completes_with_terminal_outcomes() {
        let mut p = MetroParams::new(40, 2017);
        p.shards = 4;
        let run = run_metropolis(&p);
        let (spawned, succeeded, reset, stalled) = run.counts;
        assert_eq!(spawned, 40);
        assert_eq!(succeeded + reset + stalled, 40, "every flow reaches a terminal state");
        assert!(succeeded > 0, "some flows must fetch their page: {:?}", run.counts);
        assert!(run.results.iter().all(|r| r.outcome != FlowOutcome::Pending));
        assert_eq!(run.order_violations, 0);
        let total: u64 = run.shards.iter().map(|s| s.flows).sum();
        assert_eq!(total, 40, "shard summaries partition the grid");
    }

    #[test]
    fn aggregation_is_identical_across_worker_counts() {
        let mut p = MetroParams::new(60, 11);
        p.shards = 8;
        let run = run_metropolis(&p);
        for workers in [2usize, 8] {
            let again = aggregate_shards(&run.results, p.shards, workers);
            assert_eq!(again, run.shards, "{workers} workers");
        }
    }

    #[test]
    fn latency_stats_surface_empty_shards() {
        let shards = vec![
            ShardSummary {
                flows: 2,
                succeeded: 2,
                latency_sum_us: 2_000,
                latency_min_us: 800,
                latency_max_us: 1_200,
                ..ShardSummary::default()
            },
            ShardSummary {
                flows: 3,
                reset: 3,
                ..ShardSummary::default()
            },
        ];
        let stats = shard_latency_stats(&shards);
        assert_eq!(stats.empty, 1, "the all-reset shard is surfaced, not averaged as zero");
        assert!((stats.avg - 1_000.0).abs() < f64::EPSILON);
        assert!((stats.min - 1_000.0).abs() < f64::EPSILON);
    }
}
