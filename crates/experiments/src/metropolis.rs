//! Metropolis: one shared world, very many concurrent flows.
//!
//! Where [`crate::trial`] builds one simulation per fetch, this module
//! builds **one** simulation hosting the whole population: a seeded load
//! generator plans every flow up front (arrival time, client address,
//! site, ISN, keyword, per-flow INTANG strategy), the
//! [`intang_apps::metro`] multiplexers host the endpoints, and a single
//! GFW tap — one shared TCB table, one shared blacklist — watches them
//! all. That sharing is the point: one flow's detection blacklists a
//! `(src, dst)` pair and resets *other* flows on it, capacity pressure
//! evicts TCBs and degrades detection, and resync churn from many flows
//! counts as storms.
//!
//! Determinism: the event loop is strictly serial. "Workers" here are
//! post-run aggregation threads over the per-flow result grid, one shard
//! at a time, folded in shard-index order — so any worker count produces
//! byte-identical [`MetroRun`]s (asserted by `tests/determinism.rs`).

use crate::runner::MinMaxAvg;
use intang_apps::metro::{FlowOutcome, FlowResult, FlowSpec, MetroClients, MetroHandle, MetroServers};
use intang_core::{IntangConfig, IntangElement, IntangHandle, StrategyKind};
use intang_gfw::{EvictionPolicy, GfwConfig, GfwElement, GfwHandle};
use intang_middlebox::SeqStrictFirewall;
use intang_netsim::rng::SimRng;
use intang_netsim::{Duration, Instant, Link, Simulation};
use intang_telemetry::{classify, FailureVector, TrialEvidence, TrialOutcome};
use intang_telemetry::{MetricsSheet, SeriesSheet};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Total client→server hop count of the metropolis path (2 on the censor
/// side + 3 on the server side); seeded into the INTANG shim so
/// TTL-scoped insertions cross the censor and die before the servers
/// without a probe storm per site.
const PATH_HOPS: u8 = 5;

/// Everything defining one metropolis run.
#[derive(Debug, Clone)]
pub struct MetroParams {
    /// Flows to spawn over the run.
    pub flows: u32,
    pub seed: u64,
    /// Shard count for per-flow state (aggregation workers sweep shards).
    pub shards: u32,
    /// Client address pool size (source ports are per-address, so this
    /// bounds flows-per-address; [`MetroParams::new`] scales it).
    pub clients: u32,
    /// Origin-site pool size (kept small: the shim's hop cache holds 64).
    pub sites: u32,
    /// Censor TCB-table capacity and eviction policy.
    pub max_tcbs: usize,
    pub eviction: EvictionPolicy,
    /// Mean flow inter-arrival time in microseconds (uniform on
    /// `[0, 2·mean]`).
    pub mean_interarrival_us: u64,
    /// Probability a flow's request carries the sensitive keyword.
    pub keyword_prob: f64,
    /// Upper bound of the uniform ESTABLISHED→request delay draw.
    pub max_request_delay_us: u64,
    /// Event horizon: spawn window plus drain time.
    pub horizon: Instant,
    /// Censor configuration override (e.g. compiled from a
    /// [`intang_gfw::CensorProfile`]); `None` runs the stock evolved GFW.
    /// `max_tcbs`/`eviction`/sharding above still apply on top.
    pub censor: Option<GfwConfig>,
    /// Insert a strict sequence-checking firewall (§3.4 / §7.1) on the
    /// server side of the censor. The 2 ms / 3-hop server link is split
    /// into 1 ms / 1 hop → seqfw → 1 ms / 2 hops, so total path latency
    /// and hop count are unchanged and TTL-scoped insertions still cross
    /// the middlebox but die before the servers.
    pub middlebox: bool,
}

impl MetroParams {
    /// Defaults scaled to `flows`: enough client addresses that no
    /// address exhausts its port range, and a horizon covering the
    /// arrival window plus a 25 s drain.
    pub fn new(flows: u32, seed: u64) -> MetroParams {
        let mean_interarrival_us = 200;
        let spawn_window = u64::from(flows) * mean_interarrival_us;
        MetroParams {
            flows,
            seed,
            shards: 8,
            // Scale the address pool with the population: too few client
            // addresses and every (src, dst) pair is blacklisted within
            // the spawn window, collapsing the world into pure collateral.
            clients: (flows / 16).clamp(8, 4_096),
            sites: 8,
            max_tcbs: 65_536,
            eviction: EvictionPolicy::Oldest,
            mean_interarrival_us,
            keyword_prob: 0.5,
            max_request_delay_us: 50_000,
            horizon: Instant(spawn_window + 25_000_000),
            censor: None,
            middlebox: false,
        }
    }
}

/// The generated world: address pools, start-sorted flow specs, and each
/// flow's preset strategy draw.
pub struct MetroWorld {
    pub clients: Vec<Ipv4Addr>,
    pub sites: Vec<Ipv4Addr>,
    pub specs: Vec<FlowSpec>,
    pub strategies: Vec<StrategyKind>,
}

/// Deterministic load plan: every draw comes from one SplitMix stream
/// seeded by `params.seed`, so the same params always produce the same
/// world regardless of shard or worker count.
pub fn generate_world(p: &MetroParams) -> MetroWorld {
    let mut rng = SimRng::seed_from(p.seed ^ 0x4d45_5452_4f50_4f4c); // "METROPOL"
    let clients: Vec<Ipv4Addr> = (0..p.clients.max(1))
        .map(|i| Ipv4Addr::new(10, 1, (i >> 8) as u8, (i & 0xff) as u8))
        .collect();
    let sites: Vec<Ipv4Addr> = (0..p.sites.clamp(1, 64))
        .map(|i| Ipv4Addr::new(203, 0, 113, (i + 1) as u8))
        .collect();
    let pool = StrategyKind::adaptive_pool();
    let mut specs = Vec::with_capacity(p.flows as usize);
    let mut strategies = Vec::with_capacity(p.flows as usize);
    let mut t = 0u64;
    for _ in 0..p.flows {
        t += rng.range_u64(0, 2 * p.mean_interarrival_us + 1);
        specs.push(FlowSpec {
            start: Instant(t),
            client: rng.index(clients.len()) as u32,
            site: rng.index(sites.len()) as u32,
            isn: rng.next_u32(),
            keyword: rng.chance(p.keyword_prob),
            request_delay: Duration::from_micros(rng.range_u64(0, p.max_request_delay_us + 1)),
        });
        // One draw in five runs bare: those keyword flows are the ones the
        // censor detects, and their blacklist entries are what makes
        // cross-flow collateral observable in the shared world.
        let k = rng.index(pool.len() + 1);
        strategies.push(if k == pool.len() { StrategyKind::NoStrategy } else { pool[k] });
    }
    MetroWorld {
        clients,
        sites,
        specs,
        strategies,
    }
}

/// Per-shard fold of the flow-result grid (pure function of the shard's
/// rows — identical whichever worker computes it).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardSummary {
    pub flows: u64,
    pub succeeded: u64,
    pub reset: u64,
    pub stalled: u64,
    pub pending: u64,
    pub latency_sum_us: u64,
    pub latency_min_us: u64,
    pub latency_max_us: u64,
}

impl ShardSummary {
    fn fold(&mut self, r: &FlowResult) {
        self.flows += 1;
        match r.outcome {
            FlowOutcome::Success => {
                self.succeeded += 1;
                self.latency_sum_us += r.latency_us;
                self.latency_max_us = self.latency_max_us.max(r.latency_us);
                self.latency_min_us = if self.latency_min_us == 0 {
                    r.latency_us
                } else {
                    self.latency_min_us.min(r.latency_us)
                };
            }
            FlowOutcome::Reset => self.reset += 1,
            FlowOutcome::Stalled => self.stalled += 1,
            FlowOutcome::Pending => self.pending += 1,
        }
    }
}

/// Aggregate the outcome grid shard by shard on `workers` threads. Each
/// shard's summary is a pure function of that shard's rows and lands at
/// its own index, so the result is byte-identical for any `workers >= 1`.
pub fn aggregate_shards(results: &[FlowResult], shards: u32, workers: usize) -> Vec<ShardSummary> {
    let shards = shards.max(1) as usize;
    let mut out = vec![ShardSummary::default(); shards];
    let workers = workers.max(1).min(shards);
    if workers == 1 {
        for r in results {
            out[r.shard as usize].fold(r);
        }
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let computed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let s = cursor.fetch_add(1, Ordering::Relaxed);
                        if s >= shards {
                            break;
                        }
                        let mut sum = ShardSummary::default();
                        for r in results.iter().filter(|r| r.shard as usize == s) {
                            sum.fold(r);
                        }
                        mine.push((s, sum));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard aggregation worker panicked"))
            .collect::<Vec<_>>()
    });
    for (s, sum) in computed {
        out[s] = sum;
    }
    out
}

/// Min/max/avg of mean per-flow success latency across shards, with
/// success-free shards surfaced via [`MinMaxAvg::empty`] rather than
/// folded in as zeros (the PR-2 empty-cell convention).
pub fn shard_latency_stats(shards: &[ShardSummary]) -> MinMaxAvg {
    let empty = shards.iter().filter(|s| s.succeeded == 0).count();
    let vals: Vec<f64> = shards
        .iter()
        .filter(|s| s.succeeded > 0)
        .map(|s| s.latency_sum_us as f64 / s.succeeded as f64)
        .collect();
    if vals.is_empty() {
        return MinMaxAvg {
            min: 0.0,
            max: 0.0,
            avg: 0.0,
            empty,
        };
    }
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let avg = vals.iter().sum::<f64>() / vals.len() as f64;
    MinMaxAvg { min, max, avg, empty }
}

/// Everything a metropolis run reports.
pub struct MetroRun {
    /// Per-flow outcome grid, indexed by flow id.
    pub results: Vec<FlowResult>,
    /// `(spawned, succeeded, reset, stalled)`.
    pub counts: (u64, u64, u64, u64),
    /// Per-shard summaries in shard order.
    pub shards: Vec<ShardSummary>,
    /// Simulator events processed.
    pub events: u64,
    /// Cross-flow interference counters from the shared censor.
    pub collateral_resets: u64,
    pub tcbs_evicted: u64,
    pub resync_storms: u64,
    /// Full merged metrics sheet (every element on the path).
    pub metrics: MetricsSheet,
    /// Gauge series when series telemetry was enabled.
    pub series: Option<Box<SeriesSheet>>,
    /// Per-flow `(time, seq)` ordering regressions — must be zero.
    pub order_violations: u64,
    /// Simcheck violations observed during the run (0 when disabled).
    pub violations: u64,
}

/// Live handles of an assembled metropolis world (exposed so tests can
/// poke at the censor or the outcome grid mid-run).
pub struct MetroParts {
    pub metro: MetroHandle,
    pub intang: IntangHandle,
    pub gfw: GfwHandle,
}

/// Build the metropolis simulation without running it (the legacy serial
/// world: one global censor TCB table, one global shim state, all draws
/// from the simulation RNG).
pub fn build_metropolis(p: &MetroParams, world: &MetroWorld) -> (Simulation, MetroParts) {
    build_metropolis_inner(p, world, 1, 0, false)
}

/// Build one event domain of a `domains`-way parallel metropolis: the
/// same topology as [`build_metropolis`], but the metro clients own only
/// the shards with `shard % domains == domain`, and the censor and shim
/// run with `state_shards = p.shards` so every piece of cross-flow state
/// — TCB eviction order and capacity quota, resync windows, sticky
/// draws, injector RNG streams, learned δ overrides — is partitioned by
/// the same [`intang_packet::pair_shard`] key the metro flows shard by.
/// Each shard's event stream is then causally closed, so any grouping of
/// shards into domains replays identical per-shard bytes.
///
/// `domains = 1, domain = 0` is the **serial reference** for the parallel
/// determinism grid: one simulation hosting all shards under the exact
/// same sharded-state semantics.
pub fn build_metropolis_domain(p: &MetroParams, world: &MetroWorld, domains: u32, domain: u32) -> (Simulation, MetroParts) {
    build_metropolis_inner(p, world, domains, domain, true)
}

/// Per-lane RNG seed bases for the sharded censor and shim — distinct
/// constants so the two stacks of lanes never share a stream.
const GFW_LANE_SEED: u64 = 0x4746_575f_4c41_4e45; // "GFW_LANE"
const SHIM_LANE_SEED: u64 = 0x5348_494d_4c41_4e45; // "SHIMLANE"

fn build_metropolis_inner(p: &MetroParams, world: &MetroWorld, domains: u32, domain: u32, sharded_state: bool) -> (Simulation, MetroParts) {
    let mut sim = Simulation::new(p.seed);

    // The INTANG shim fronts every client address; per-flow strategy
    // state is keyed by four-tuple and preset from the world's draws.
    let cfg = IntangConfig {
        strategy: None,
        measure_hops: true,
        prefer_ttl: true,
        state_shards: if sharded_state { p.shards } else { 1 },
        shard_seed: if sharded_state { p.seed ^ SHIM_LANE_SEED } else { 0 },
        ..IntangConfig::default()
    };
    let (intang_el, intang) = IntangElement::new(world.clients[0], cfg);
    for site in &world.sites {
        intang.seed_hops(*site, PATH_HOPS);
    }

    // [0] every client flow (this domain's shards of them).
    let (mut clients_el, metro) = MetroClients::for_domain(
        world.clients.clone(),
        world.sites.clone(),
        world.specs.clone(),
        p.shards,
        domains,
        domain,
    );
    for (tuple, kind) in clients_el.tuples().iter().zip(&world.strategies) {
        intang.preset_strategy(*tuple, *kind);
    }
    let shim = intang.clone();
    clients_el.set_retire_hook(Box::new(move |tuple| shim.retire_flow(tuple)));
    // Arm the per-shard spawn/finish chains before the element moves into
    // the simulation; it is about to become element [0].
    clients_el.bootstrap(&mut sim, 0, p.horizon);
    let cidx = sim.add_element(Box::new(clients_el));
    assert_eq!(cidx, 0, "metro clients must be the leftmost element");

    // [1] the shim, directly on the client side.
    sim.add_link(Link::new(Duration::from_micros(50), 0));
    sim.add_element(Box::new(intang_el));

    // [2] the censor tap at the border (2 hops out).
    sim.add_link(Link::new(Duration::from_millis(1), 2).with_router_base(Ipv4Addr::new(172, 16, 2, 0)));
    let mut gcfg = p.censor.clone().unwrap_or_else(GfwConfig::evolved);
    gcfg.max_tcbs = p.max_tcbs;
    gcfg.eviction = p.eviction;
    if sharded_state {
        gcfg.state_shards = p.shards;
        gcfg.shard_seed = p.seed ^ GFW_LANE_SEED;
    }
    let (gfw_el, gfw) = GfwElement::labeled(gcfg, "GFW");
    sim.add_element(Box::new(gfw_el));

    if p.middlebox {
        // [3] a strict server-side sequence firewall one hop past the
        // censor, then [4] the origin sites two hops further. The stock
        // 2 ms / 3-hop server link is split 1+2 around the box, so path
        // latency and PATH_HOPS are identical to the middlebox-free
        // topology — TTL-scoped insertions cross the seqfw (poisoning
        // its expected-sequence tracking) and still die before the
        // servers. Seqfw state is per-four-tuple, so the domain split
        // partitions it exactly like every other sharded element.
        sim.add_link(Link::new(Duration::from_millis(1), 1).with_router_base(Ipv4Addr::new(172, 16, 3, 0)));
        sim.add_element(Box::new(SeqStrictFirewall::new("metro-seqfw")));
        sim.add_link(Link::new(Duration::from_millis(1), 2).with_router_base(Ipv4Addr::new(172, 16, 4, 0)));
        sim.add_element(Box::new(MetroServers::new(world.sites.clone())));
    } else {
        // [3] every origin site (3 more hops; TTL-scoped insertions with
        // the seeded PATH_HOPS estimate die on this link).
        sim.add_link(Link::new(Duration::from_millis(2), 3).with_router_base(Ipv4Addr::new(172, 16, 3, 0)));
        sim.add_element(Box::new(MetroServers::new(world.sites.clone())));
    }

    (sim, MetroParts { metro, intang, gfw })
}

/// Run a metropolis world to its horizon and aggregate with `workers`
/// shard-sweep threads.
pub fn run_metropolis_with_workers(p: &MetroParams, workers: usize) -> MetroRun {
    let sc = intang_simcheck::enabled();
    if sc {
        intang_simcheck::begin_trial(p.seed);
        let _ = intang_simcheck::take_violations();
    }
    let world = generate_world(p);
    let (mut sim, parts) = build_metropolis(p, &world);
    let events = sim.run_until(p.horizon);

    let mut metrics = MetricsSheet::new();
    sim.export_metrics(&mut metrics);
    // One logical censor device per run: tag it at the run level (never
    // per element — a domain split would multiply the constant).
    metrics.inc(parts.gfw.profile_tag().device_counter());
    let series = sim.take_series();
    let violations = if sc { intang_simcheck::take_violations().len() as u64 } else { 0 };

    let results = parts.metro.results();
    let shards = aggregate_shards(&results, p.shards, workers);
    let (spawned, succeeded, reset, stalled) = parts.metro.counts();
    MetroRun {
        results,
        counts: (spawned, succeeded, reset, stalled),
        shards,
        events,
        collateral_resets: parts.gfw.blacklist_collateral_resets(),
        tcbs_evicted: parts.gfw.tcbs_evicted(),
        resync_storms: parts.gfw.resync_storms(),
        metrics,
        series,
        order_violations: parts.metro.order_violations(),
        violations,
    }
}

/// Serial-aggregation convenience wrapper.
pub fn run_metropolis(p: &MetroParams) -> MetroRun {
    run_metropolis_with_workers(p, 1)
}

/// §5 diagnosis over a metropolis run: how many stalled flows the failure
/// classifier attributes to middlebox interference, given the run's merged
/// evidence. Zero whenever nothing stalled or the merged sheet carries no
/// middlebox-drop evidence (e.g. [`MetroParams::middlebox`] off).
pub fn middlebox_interference_diagnoses(run: &MetroRun) -> u64 {
    let stalled = run.counts.3;
    if stalled == 0 {
        return 0;
    }
    let ev = TrialEvidence::from_sheet(&run.metrics);
    match classify(TrialOutcome::SilentFailure, &ev) {
        Some(FailureVector::MiddleboxInterference) => stalled,
        _ => 0,
    }
}

/// One domain's executor diagnostics (wall-clock fields vary run to run;
/// never part of the deterministic merge).
#[derive(Debug, Clone, Copy)]
pub struct DomainStats {
    pub domain: u32,
    /// Events this domain's simulation processed.
    pub events: u64,
    /// Flows this domain owned (its spawned count).
    pub flows_owned: u64,
    /// Wall-clock from claim to finished merge handoff.
    pub busy: std::time::Duration,
}

/// A parallel metropolis run: the merged [`MetroRun`] — byte-identical to
/// the `domains = 1` serial reference — plus executor diagnostics.
pub struct MetroDomainsRun {
    pub run: MetroRun,
    /// Event domains actually used (clamped to `[1, shards]`).
    pub domains: u32,
    /// Worker threads actually used (clamped to `[1, domains]`).
    pub workers: usize,
    /// Per-domain diagnostics, in domain order.
    pub domain_stats: Vec<DomainStats>,
    /// Per-worker executor statistics, in worker-spawn order.
    pub worker_stats: Vec<crate::runner::WorkerStats>,
    /// Per-worker span-profiler sheets, parallel to `worker_stats`.
    pub worker_profiles: Vec<intang_telemetry::SpanSheet>,
}

/// Everything one domain worker ships back to the merge — plain data
/// only; simulations, wires and `Rc` handles never cross threads.
struct DomainOut {
    results: Vec<FlowResult>,
    counts: (u64, u64, u64, u64),
    events: u64,
    collateral_resets: u64,
    tcbs_evicted: u64,
    resync_storms: u64,
    metrics: MetricsSheet,
    /// Raw per-tick gauge samples (empty unless series telemetry is on);
    /// tick `k` is sampled with every event before `k * CADENCE_US`
    /// dispatched and nothing at or after it — the same cut the in-sim
    /// recorder uses, so tick-wise sums across domains reproduce the
    /// serial reading exactly.
    samples: Vec<intang_telemetry::GaugeSample>,
    order_violations: u64,
    violations: u64,
    busy: std::time::Duration,
}

/// Build and run one event domain to the horizon, entirely on the calling
/// thread (a `Simulation` is thread-bound).
fn run_one_domain(p: &MetroParams, world: &MetroWorld, domains: u32, domain: u32, series_wanted: bool, sc: bool) -> DomainOut {
    use intang_telemetry::series::CADENCE_US;
    let started = std::time::Instant::now();
    if sc {
        intang_simcheck::begin_trial(p.seed ^ (u64::from(domain) << 32) ^ 0x444f_4d41_494e_3030); // "DOMAIN00"
        let _ = intang_simcheck::take_violations();
    }
    let (mut sim, parts) = build_metropolis_domain(p, world, domains, domain);
    let mut samples = Vec::new();
    let events = if series_wanted {
        // Manual cadence sampling: chunk the run at tick boundaries and
        // snapshot gauges between chunks. The in-sim recorder is off in
        // domain sims (its per-sim sheet compacts eagerly and cannot be
        // zip-summed afterwards).
        let mut n = 0u64;
        let mut k = 0u64;
        while k.saturating_mul(CADENCE_US) <= p.horizon.0 {
            if k > 0 {
                n += sim.run_until(Instant(k * CADENCE_US - 1));
            }
            samples.push(sim.sample_gauges_now());
            k += 1;
        }
        n + sim.run_until(p.horizon)
    } else {
        sim.run_until(p.horizon)
    };
    let mut metrics = MetricsSheet::new();
    sim.export_metrics(&mut metrics);
    let violations = if sc { intang_simcheck::take_violations().len() as u64 } else { 0 };
    DomainOut {
        results: parts.metro.results(),
        counts: parts.metro.counts(),
        events,
        collateral_resets: parts.gfw.blacklist_collateral_resets(),
        tcbs_evicted: parts.gfw.tcbs_evicted(),
        resync_storms: parts.gfw.resync_storms(),
        metrics,
        samples,
        order_violations: parts.metro.order_violations(),
        violations,
        busy: started.elapsed(),
    }
}

/// Run the metropolis as `domains` parallel event domains on `workers`
/// work-stealing threads.
///
/// Each domain is a full client→shim→censor→server path hosting only its
/// own shards, built *and* run inside whichever worker claims it (the
/// same atomic-cursor executor as [`crate::runner::sweep_with_threads`]).
/// Censor and shim state run sharded (`state_shards = p.shards`), so the
/// per-shard event streams are causally closed and the merged output —
/// outcome grid, counters, metrics sheet, gauge series — is byte-identical
/// to the `domains = 1` serial reference at any `(domains, workers,
/// batching)` combination (asserted by `tests/determinism.rs`).
///
/// Note this is a *different semantics* from the legacy
/// [`run_metropolis`]: there the censor keeps one global TCB table and
/// eviction budget; here every lane owns a deterministic share of it.
/// Cross-flow interference still happens — within a lane — and the
/// partition itself is part of the modeled deployment (§2.1: sharding is
/// how real DPI boxes shed state).
pub fn run_metropolis_domains(p: &MetroParams, domains: u32, workers: usize) -> MetroDomainsRun {
    let world = generate_world(p);
    run_metropolis_domains_world(p, &world, domains, workers)
}

/// [`run_metropolis_domains`] over a caller-supplied (e.g. hand-placed)
/// world instead of the seeded generator.
pub fn run_metropolis_domains_world(p: &MetroParams, world: &MetroWorld, domains: u32, workers: usize) -> MetroDomainsRun {
    let domains = domains.clamp(1, p.shards.max(1));
    let workers = workers.max(1).min(domains as usize);
    let series_wanted = intang_telemetry::series::enabled();
    let sc = intang_simcheck::enabled();

    // Replay the caller's observability overrides inside every worker
    // (thread-locals do not cross `thread::scope`).
    let batch_override = intang_netsim::batch::thread_override();
    let flight_override = intang_netsim::flight::thread_override();
    let spans_override = intang_telemetry::spans::thread_override();

    let cursor = AtomicUsize::new(0);
    let outs: std::sync::Mutex<Vec<Option<DomainOut>>> = std::sync::Mutex::new((0..domains).map(|_| None).collect());

    let worker_results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let outs = &outs;
                scope.spawn(move || {
                    intang_netsim::batch::set_thread(batch_override);
                    intang_netsim::flight::set_thread(flight_override);
                    intang_telemetry::spans::set_thread(spans_override);
                    // Domain sims always sample manually; the in-sim
                    // recorder stays off whatever the caller set.
                    let prev_series = intang_telemetry::series::set_thread(Some(false));
                    let prev_sc = intang_simcheck::set_thread(Some(sc));
                    let started = std::time::Instant::now();
                    let mut stats = crate::runner::WorkerStats::default();
                    loop {
                        stats.steal_attempts += 1;
                        let d = cursor.fetch_add(1, Ordering::Relaxed);
                        if d >= domains as usize {
                            stats.steal_failures += 1;
                            break;
                        }
                        let out = run_one_domain(p, world, domains, d as u32, series_wanted, sc);
                        let wait = std::time::Instant::now();
                        let mut guard = outs.lock().expect("domain merge poisoned");
                        stats.merge_wait += wait.elapsed();
                        guard[d] = Some(out);
                    }
                    intang_simcheck::set_thread(prev_sc);
                    intang_telemetry::series::set_thread(prev_series);
                    stats.busy = started.elapsed();
                    (stats, intang_telemetry::spans::take_thread())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("domain worker panicked"))
            .collect::<Vec<_>>()
    });
    let (worker_stats, worker_profiles): (Vec<_>, Vec<_>) = worker_results.into_iter().unzip();
    let outs: Vec<DomainOut> = outs
        .into_inner()
        .expect("domain merge poisoned")
        .into_iter()
        .map(|o| o.expect("every domain must have run"))
        .collect();

    // Deterministic merge, all of it in domain-index order.
    let flows = world.specs.len();
    let mut results = vec![
        FlowResult {
            outcome: FlowOutcome::Pending,
            latency_us: 0,
            shard: 0,
        };
        flows
    ];
    for (i, slot) in results.iter_mut().enumerate() {
        // Every domain's grid carries the full shard column; the owner of
        // flow i is its shard mod domains.
        let shard = outs[0].results[i].shard;
        *slot = outs[(shard % domains) as usize].results[i];
    }
    let mut counts = (0u64, 0u64, 0u64, 0u64);
    let mut events = 0u64;
    let mut collateral_resets = 0u64;
    let mut tcbs_evicted = 0u64;
    let mut resync_storms = 0u64;
    let mut order_violations = 0u64;
    let mut violations = 0u64;
    let mut metrics = MetricsSheet::new();
    for o in &outs {
        counts.0 += o.counts.0;
        counts.1 += o.counts.1;
        counts.2 += o.counts.2;
        counts.3 += o.counts.3;
        events += o.events;
        collateral_resets += o.collateral_resets;
        tcbs_evicted += o.tcbs_evicted;
        resync_storms += o.resync_storms;
        order_violations += o.order_violations;
        violations += o.violations;
        metrics.merge(&o.metrics);
    }
    // The N domain elements are one logical censor device: tag the merged
    // sheet exactly once, so any (domains, workers) split reports the same
    // profile census as the serial reference.
    let tag = p.censor.as_ref().map(|c| c.profile_tag).unwrap_or(intang_gfw::ProfileTag::Evolved);
    metrics.inc(tag.device_counter());
    let series = series_wanted.then(|| {
        // Zip-sum the raw per-tick samples across domains: gauge values
        // are extensive (table sizes, queue depths, live counts), so the
        // serial reading at tick k is exactly the sum of the domain
        // readings at tick k.
        let mut sheet = SeriesSheet::new();
        let ticks = outs.iter().map(|o| o.samples.len()).max().unwrap_or(0);
        for k in 0..ticks {
            let mut g = intang_telemetry::GaugeSample::default();
            for o in &outs {
                if let Some(s) = o.samples.get(k) {
                    for id in intang_telemetry::GaugeId::ALL {
                        g.add(id, s.get(id));
                    }
                }
            }
            sheet.push_sample(&g);
        }
        Box::new(sheet)
    });
    let shards = aggregate_shards(&results, p.shards, workers);
    let domain_stats = outs
        .iter()
        .enumerate()
        .map(|(d, o)| DomainStats {
            domain: d as u32,
            events: o.events,
            flows_owned: o.counts.0,
            busy: o.busy,
        })
        .collect();
    MetroDomainsRun {
        run: MetroRun {
            results,
            counts,
            shards,
            events,
            collateral_resets,
            tcbs_evicted,
            resync_storms,
            metrics,
            series,
            order_violations,
            violations,
        },
        domains,
        workers,
        domain_stats,
        worker_stats,
        worker_profiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_generation_is_deterministic_and_start_sorted() {
        let p = MetroParams::new(500, 7);
        let a = generate_world(&p);
        let b = generate_world(&p);
        assert_eq!(a.specs.len(), 500);
        assert!(a.specs.windows(2).all(|w| w[0].start <= w[1].start));
        for (x, y) in a.specs.iter().zip(&b.specs) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        assert_eq!(a.strategies, b.strategies);
    }

    #[test]
    fn small_world_completes_with_terminal_outcomes() {
        let mut p = MetroParams::new(40, 2017);
        p.shards = 4;
        let run = run_metropolis(&p);
        let (spawned, succeeded, reset, stalled) = run.counts;
        assert_eq!(spawned, 40);
        assert_eq!(succeeded + reset + stalled, 40, "every flow reaches a terminal state");
        assert!(succeeded > 0, "some flows must fetch their page: {:?}", run.counts);
        assert!(run.results.iter().all(|r| r.outcome != FlowOutcome::Pending));
        assert_eq!(run.order_violations, 0);
        let total: u64 = run.shards.iter().map(|s| s.flows).sum();
        assert_eq!(total, 40, "shard summaries partition the grid");
    }

    #[test]
    fn aggregation_is_identical_across_worker_counts() {
        let mut p = MetroParams::new(60, 11);
        p.shards = 8;
        let run = run_metropolis(&p);
        for workers in [2usize, 8] {
            let again = aggregate_shards(&run.results, p.shards, workers);
            assert_eq!(again, run.shards, "{workers} workers");
        }
    }

    #[test]
    fn parallel_domains_match_the_serial_reference() {
        let mut p = MetroParams::new(300, 41);
        p.shards = 4;
        let reference = run_metropolis_domains(&p, 1, 1);
        let ref_grid: Vec<_> = reference.run.results.iter().map(|r| (r.outcome, r.latency_us)).collect();
        assert_eq!(reference.run.counts.0, 300);
        for (domains, workers) in [(2u32, 2usize), (4, 4), (4, 1)] {
            let run = run_metropolis_domains(&p, domains, workers);
            let tag = format!("{domains} domains, {workers} workers");
            let grid: Vec<_> = run.run.results.iter().map(|r| (r.outcome, r.latency_us)).collect();
            assert_eq!(ref_grid, grid, "grid differs at {tag}");
            assert_eq!(reference.run.counts, run.run.counts, "counts differ at {tag}");
            assert_eq!(reference.run.events, run.run.events, "events differ at {tag}");
            assert_eq!(reference.run.metrics, run.run.metrics, "metrics differ at {tag}");
            assert_eq!(
                (
                    reference.run.collateral_resets,
                    reference.run.tcbs_evicted,
                    reference.run.resync_storms
                ),
                (run.run.collateral_resets, run.run.tcbs_evicted, run.run.resync_storms),
                "censor counters differ at {tag}"
            );
            assert_eq!(run.domains, domains);
            assert_eq!(
                run.domain_stats.iter().map(|d| d.events).sum::<u64>(),
                run.run.events,
                "domain events must partition the total at {tag}"
            );
        }
    }

    #[test]
    fn middlebox_hop_interferes_at_scale_and_stays_deterministic() {
        use intang_telemetry::Counter;
        // 1k flows through the seqfw hop: insertion-based strategies leave
        // junk in the box's sequence tracking, real requests then look
        // stale and are dropped — flows stall and the §5 classifier calls
        // it middlebox interference.
        let mut p = MetroParams::new(1_000, 97);
        p.shards = 4;
        p.middlebox = true;
        let reference = run_metropolis_domains(&p, 1, 1);
        let blocked = reference.run.metrics.counter(Counter::MiddleboxSeqfwBlocked);
        assert!(blocked > 0, "seqfw must block packets at 1k flows, got {blocked}");
        assert!(reference.run.counts.3 > 0, "some flows must stall: {:?}", reference.run.counts);
        assert!(
            middlebox_interference_diagnoses(&reference.run) > 0,
            "stalls with seqfw evidence must diagnose as middlebox interference"
        );
        // The middlebox hop keeps per-four-tuple state only, so the domain
        // split must still replay byte-identically.
        let run = run_metropolis_domains(&p, 2, 2);
        assert_eq!(reference.run.counts, run.run.counts, "counts differ with middlebox on");
        assert_eq!(reference.run.metrics, run.run.metrics, "metrics differ with middlebox on");
    }

    #[test]
    fn middlebox_free_runs_report_no_interference() {
        let mut p = MetroParams::new(200, 97);
        p.shards = 4;
        let run = run_metropolis(&p);
        assert_eq!(run.metrics.counter(intang_telemetry::Counter::MiddleboxSeqfwBlocked), 0);
        assert_eq!(middlebox_interference_diagnoses(&run), 0);
    }

    #[test]
    fn censor_override_retags_the_run() {
        use intang_gfw::CensorProfile;
        use intang_telemetry::Counter;
        let mut p = MetroParams::new(40, 5);
        p.shards = 4;
        let stock = run_metropolis(&p);
        assert_eq!(stock.metrics.counter(Counter::GfwProfileEvolvedDevices), 1);
        assert_eq!(stock.metrics.counter(Counter::GfwProfileTurkmenistanDevices), 0);
        p.censor = Some(CensorProfile::turkmenistan().compile().expect("builtin compiles"));
        let tk = run_metropolis(&p);
        assert_eq!(tk.metrics.counter(Counter::GfwProfileTurkmenistanDevices), 1);
        assert_eq!(tk.metrics.counter(Counter::GfwProfileEvolvedDevices), 0);
        // The domains path tags the merged sheet identically.
        let tk2 = run_metropolis_domains(&p, 2, 2);
        assert_eq!(tk2.run.metrics.counter(Counter::GfwProfileTurkmenistanDevices), 1);
    }

    #[test]
    fn latency_stats_surface_empty_shards() {
        let shards = vec![
            ShardSummary {
                flows: 2,
                succeeded: 2,
                latency_sum_us: 2_000,
                latency_min_us: 800,
                latency_max_us: 1_200,
                ..ShardSummary::default()
            },
            ShardSummary {
                flows: 3,
                reset: 3,
                ..ShardSummary::default()
            },
        ];
        let stats = shard_latency_stats(&shards);
        assert_eq!(stats.empty, 1, "the all-reset shard is surfaced, not averaged as zero");
        assert!((stats.avg - 1_000.0).abs() < f64::EPSILON);
        assert!((stats.min - 1_000.0).abs() < f64::EPSILON);
    }
}
