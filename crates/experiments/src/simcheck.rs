//! The simcheck minimal-repro shrinker.
//!
//! When a sweep trial trips a runtime invariant (see `intang-simcheck`),
//! the runner hands the trial's identity and the recorded violations to
//! [`shrink`], which:
//!
//! 1. replays the trial in isolation at the full horizon (fresh adaptive
//!    history) to confirm it reproduces outside the sweep;
//! 2. bisects the event horizon down to the smallest prefix of simulated
//!    time that still violates;
//! 3. greedily drops fault-plan components ([`FaultPlan::shrink_candidates`])
//!    that the violation does not depend on;
//! 4. re-runs the minimal trial with packet tracing enabled and writes a
//!    repro artifact — seed, spec, violations, causal packet lineage and
//!    replay instructions — under `.simcheck/` (or `INTANG_SIMCHECK_DIR`).
//!
//! Every replay is seed-deterministic and the artifact contains no
//! timestamps, so shrinking the same violation twice produces the same
//! bytes — the artifact itself is a regression test.

use crate::scenario::{VantagePoint, Website};
use crate::trial::{build_http_sim, classify, drive_http_trial, TrialSpec, DEFAULT_HORIZON};
use intang_core::select::History;
use intang_core::StrategyKind;
use intang_faults::FaultPlan;
use intang_netsim::{Instant, Simulation};
use intang_simcheck::Violation;
use std::cell::RefCell;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// Identity of the violating trial, exactly as the sweep runner built it.
pub struct ShrinkInput<'a> {
    pub vp: &'a VantagePoint,
    pub site: &'a Website,
    pub strategy: Option<StrategyKind>,
    pub keyword: bool,
    pub seed: u64,
    pub redundancy: u32,
    pub route_change_prob: f64,
    /// The realized fault schedule of the violating trial.
    pub faults: Option<FaultPlan>,
}

/// What the shrinker concluded.
#[derive(Debug)]
pub struct ShrinkReport {
    pub seed: u64,
    /// Did the violation reproduce in an isolated replay? (Adaptive-mode
    /// trials depend on cell-accumulated history and may not.)
    pub reproducible: bool,
    /// Smallest horizon that still violates (full horizon if not shrunk).
    pub horizon: Instant,
    /// Fault-plan components the violation did not depend on, in drop order.
    pub dropped: Vec<&'static str>,
    /// Violations observed in the minimal replay (or the sweep-time ones
    /// when not reproducible).
    pub violations: Vec<Violation>,
    /// Path of the written repro artifact, if the filesystem cooperated.
    pub artifact: Option<PathBuf>,
}

/// Bisection grain: horizons closer than this (simulated µs) are not worth
/// distinguishing — 8 replays get from 25 s down to ~0.1 s resolution.
const HORIZON_GRAIN: u64 = 100_000;

/// Artifact directory: `INTANG_SIMCHECK_DIR` or `.simcheck`.
pub fn artifact_dir() -> PathBuf {
    std::env::var("INTANG_SIMCHECK_DIR")
        .ok()
        .filter(|d| !d.is_empty())
        .map_or_else(|| PathBuf::from(".simcheck"), PathBuf::from)
}

/// What one isolated replay observed: the violations it produced and —
/// when `trace` is on — the causal lineage of the final trace event plus
/// the flight recorder's dump of the most recent dispatched events.
struct Replay {
    violations: Vec<Violation>,
    lineage: Option<String>,
    flight: Option<String>,
}

/// Replay `input` once at `horizon` with `faults`.
fn replay(input: &ShrinkInput<'_>, horizon: Instant, faults: &Option<FaultPlan>, trace: bool) -> Replay {
    // The traced (final) replay also forces the flight recorder on, so the
    // artifact can show the event tail even when simcheck alone would not
    // have recorded one on this thread.
    let prev_flight = trace.then(|| intang_netsim::flight::set_thread(Some(true)));
    intang_simcheck::begin_trial(input.seed);
    let _ = intang_simcheck::take_violations();
    let mut spec = TrialSpec::new(input.vp, input.site, input.strategy, input.keyword, input.seed);
    spec.redundancy = input.redundancy;
    spec.route_change_prob = input.route_change_prob;
    spec.faults = faults.clone();
    spec.horizon = horizon;
    if input.strategy.is_none() {
        // Isolated replays cannot reconstruct the cell's accumulated
        // adaptive history; a fresh one is the reproducible approximation.
        spec.history = Some(Rc::new(RefCell::new(History::new())));
    }
    let (mut sim, parts) = build_http_sim(&spec);
    if trace {
        sim.trace.enable();
    }
    drive_http_trial(&mut sim, &parts, &spec);
    // classify() exports metrics, which runs the conservation reconcile —
    // violations from that family surface here, not during the drive.
    let _ = classify(&sim, &parts, &spec);
    let violations = intang_simcheck::take_violations();
    let lineage = trace.then(|| render_tail_lineage(&sim));
    let flight = sim.flight_dump().filter(|_| trace);
    if let Some(prev) = prev_flight {
        intang_netsim::flight::set_thread(prev);
    }
    Replay {
        violations,
        lineage,
        flight,
    }
}

fn render_tail_lineage(sim: &Simulation) -> String {
    match sim.trace.events().last() {
        Some(e) => sim.trace.render_lineage(e.id),
        None => "(no trace events recorded)\n".to_string(),
    }
}

/// Shrink a violating trial to a minimal repro and write the artifact.
///
/// `sweep_violations` are the violations the runner drained from the
/// original (in-sweep) run; they are recorded verbatim when the trial does
/// not reproduce in isolation.
pub fn shrink(input: &ShrinkInput<'_>, sweep_violations: &[Violation], out_dir: &Path) -> ShrinkReport {
    // 1. Reproduce in isolation at the full horizon.
    let repro = replay(input, DEFAULT_HORIZON, &input.faults, false);
    if repro.violations.is_empty() {
        let report = ShrinkReport {
            seed: input.seed,
            reproducible: false,
            horizon: DEFAULT_HORIZON,
            dropped: Vec::new(),
            violations: sweep_violations.to_vec(),
            artifact: None,
        };
        let artifact = write_artifact(
            input,
            &report,
            &input.faults,
            "(not reproducible in isolation; no lineage)\n",
            None,
            out_dir,
        );
        return ShrinkReport { artifact, ..report };
    }

    // 2. Bisect the smallest violating horizon. Invariant: `hi` violates,
    // `lo` does not (an empty prefix trivially cannot).
    let mut lo = 0u64;
    let mut hi = DEFAULT_HORIZON.0;
    while hi - lo > HORIZON_GRAIN {
        let mid = lo + (hi - lo) / 2;
        if replay(input, Instant(mid), &input.faults, false).violations.is_empty() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let horizon = Instant(hi);

    // 3. Greedily drop fault-plan components the violation survives without.
    let mut faults = input.faults.clone();
    let mut dropped = Vec::new();
    if faults.is_some() && !replay(input, horizon, &None, false).violations.is_empty() {
        faults = None;
        dropped.push("entire-fault-plan");
    }
    if let Some(mut plan) = faults.take() {
        loop {
            let mut next = None;
            for (label, candidate) in plan.shrink_candidates() {
                let cand = Some(candidate.clone());
                if !replay(input, horizon, &cand, false).violations.is_empty() {
                    next = Some((label, candidate));
                    break;
                }
            }
            match next {
                Some((label, candidate)) => {
                    dropped.push(label);
                    plan = candidate;
                }
                None => break,
            }
        }
        faults = Some(plan);
    }

    // 4. Final traced replay of the minimal configuration.
    let last = replay(input, horizon, &faults, true);
    let report = ShrinkReport {
        seed: input.seed,
        reproducible: true,
        horizon,
        dropped,
        violations: last.violations,
        artifact: None,
    };
    let artifact = write_artifact(
        input,
        &report,
        &faults,
        last.lineage.as_deref().unwrap_or(""),
        last.flight.as_deref(),
        out_dir,
    );
    ShrinkReport { artifact, ..report }
}

/// Render and write the repro artifact; `None` if the filesystem refuses.
fn write_artifact(
    input: &ShrinkInput<'_>,
    report: &ShrinkReport,
    minimal_faults: &Option<FaultPlan>,
    lineage: &str,
    flight: Option<&str>,
    out_dir: &Path,
) -> Option<PathBuf> {
    let text = render_artifact(input, report, minimal_faults, lineage, flight);
    std::fs::create_dir_all(out_dir).ok()?;
    let path = out_dir.join(format!("repro_{:016x}.txt", input.seed));
    let mut f = std::fs::File::create(&path).ok()?;
    f.write_all(text.as_bytes()).ok()?;
    Some(path)
}

fn render_artifact(
    input: &ShrinkInput<'_>,
    report: &ShrinkReport,
    minimal_faults: &Option<FaultPlan>,
    lineage: &str,
    flight: Option<&str>,
) -> String {
    let mut out = String::new();
    out.push_str("simcheck minimal repro\n");
    out.push_str("======================\n\n");
    out.push_str(&format!("seed:              {:#018x} ({})\n", input.seed, input.seed));
    out.push_str(&format!("vantage point:     {}\n", input.vp.name));
    out.push_str(&format!("site:              {}\n", input.site.name));
    out.push_str(&format!(
        "strategy:          {}\n",
        input.strategy.map_or_else(|| "adaptive".to_string(), |s| format!("{s:?}"))
    ));
    out.push_str(&format!("keyword:           {}\n", input.keyword));
    out.push_str(&format!("redundancy:        {}\n", input.redundancy));
    out.push_str(&format!("route_change_prob: {}\n", input.route_change_prob));
    out.push_str(&format!("reproducible:      {}\n", report.reproducible));
    out.push_str(&format!(
        "horizon:           {} µs (full: {} µs)\n",
        report.horizon.0, DEFAULT_HORIZON.0
    ));
    if report.dropped.is_empty() {
        out.push_str("dropped faults:    (none)\n");
    } else {
        out.push_str(&format!("dropped faults:    {}\n", report.dropped.join(", ")));
    }
    match minimal_faults {
        Some(plan) => out.push_str(&format!("minimal faults:    {plan:?}\n")),
        None => out.push_str("minimal faults:    (none)\n"),
    }
    out.push_str(&format!("\nviolations ({}):\n", report.violations.len()));
    for v in &report.violations {
        out.push_str(&format!("  {v}\n"));
    }
    out.push_str("\nlineage of the final trace event:\n");
    for line in lineage.lines() {
        out.push_str(&format!("  {line}\n"));
    }
    if let Some(flight) = flight {
        out.push_str("\nflight recorder (most recent dispatched events, oldest first):\n");
        for line in flight.lines() {
            out.push_str(&format!("  {line}\n"));
        }
    }
    out.push_str(
        "\nreplay:\n  Build a TrialSpec::new(vp, site, strategy, keyword, seed) with the\n  \
         horizon above, set INTANG_SIMCHECK=1 (or simcheck::set_thread) before\n  \
         constructing the simulation, and run run_http_trial. See\n  \
         EXPERIMENTS.md § Simcheck for a worked example.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn artifact_dir_defaults() {
        // Avoid set_var races: only assert the fallback shape.
        let d = artifact_dir();
        assert!(d == Path::new(".simcheck") || !d.as_os_str().is_empty());
    }

    #[test]
    fn clean_trial_shrinks_to_nothing() {
        // A violation-free trial must never reach shrink() in production;
        // if it does, the report says "not reproducible" and keeps the
        // sweep-time violations verbatim.
        let prev = intang_simcheck::set_thread(Some(true));
        let s = Scenario::smoke(2017);
        let input = ShrinkInput {
            vp: &s.vantage_points[0],
            site: &s.websites[0],
            strategy: Some(StrategyKind::NoStrategy),
            keyword: false,
            seed: 41,
            redundancy: 3,
            route_change_prob: 0.0,
            faults: None,
        };
        let dir = std::env::temp_dir().join("intang-simcheck-test-clean");
        let report = shrink(&input, &[], &dir);
        assert!(!report.reproducible);
        assert!(report.violations.is_empty());
        intang_simcheck::set_thread(prev);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
