//! Minimal flag parsing shared by the experiment binaries.

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Trials per (vantage point, site, strategy) cell.
    pub trials: u32,
    pub seed: u64,
    /// Shrink the scenario for quick runs.
    pub quick: bool,
    /// JSONL telemetry output path (`--telemetry PATH`, or the
    /// `INTANG_TELEMETRY` environment variable when the flag is absent).
    pub telemetry: Option<String>,
}

impl CommonArgs {
    pub fn parse() -> CommonArgs {
        CommonArgs::parse_from(std::env::args().skip(1))
    }

    pub fn parse_from(args: impl IntoIterator<Item = String>) -> CommonArgs {
        let mut out = CommonArgs {
            trials: 0,
            seed: 2017,
            quick: false,
            telemetry: None,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trials" => {
                    out.trials = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--trials needs a number"));
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs a number"));
                }
                // --smoke is the CI-facing alias: same shrunken scenario.
                "--quick" | "--smoke" => out.quick = true,
                "--telemetry" => {
                    out.telemetry = Some(it.next().unwrap_or_else(|| panic!("--telemetry needs a path")));
                }
                "--help" | "-h" => {
                    eprintln!("flags: --trials N        trials per cell (default: per-experiment)\n       --seed S          master seed (default 2017)\n       --quick           shrink the scenario for a fast smoke run\n       --smoke           alias for --quick\n       --telemetry PATH  write JSONL metrics + failure diagnoses to PATH\n                         (INTANG_TELEMETRY env is the fallback)");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        if out.telemetry.is_none() {
            out.telemetry = std::env::var("INTANG_TELEMETRY").ok().filter(|p| !p.is_empty());
        }
        out
    }

    /// Trials to use, with a per-experiment default.
    pub fn trials_or(&self, default: u32) -> u32 {
        if self.trials == 0 {
            if self.quick {
                (default / 4).max(2)
            } else {
                default
            }
        } else {
            self.trials
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let a = CommonArgs::parse_from(Vec::new());
        assert_eq!(a.seed, 2017);
        assert_eq!(a.trials_or(50), 50);
        let a = CommonArgs::parse_from(vec!["--trials".into(), "7".into(), "--seed".into(), "9".into()]);
        assert_eq!(a.trials_or(50), 7);
        assert_eq!(a.seed, 9);
        let a = CommonArgs::parse_from(vec!["--quick".into()]);
        assert!(a.quick);
        assert_eq!(a.trials_or(48), 12);
        let a = CommonArgs::parse_from(vec!["--smoke".into()]);
        assert!(a.quick, "--smoke is an alias for --quick");
    }

    #[test]
    fn telemetry_flag_takes_a_path() {
        let a = CommonArgs::parse_from(vec!["--telemetry".into(), "out.jsonl".into()]);
        assert_eq!(a.telemetry.as_deref(), Some("out.jsonl"));
    }
}
