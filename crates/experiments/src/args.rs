//! Minimal flag parsing shared by the experiment binaries.

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Trials per (vantage point, site, strategy) cell.
    pub trials: u32,
    pub seed: u64,
    /// Shrink the scenario for quick runs.
    pub quick: bool,
}

impl CommonArgs {
    pub fn parse() -> CommonArgs {
        CommonArgs::from_iter(std::env::args().skip(1))
    }

    pub fn from_iter(args: impl IntoIterator<Item = String>) -> CommonArgs {
        let mut out = CommonArgs { trials: 0, seed: 2017, quick: false };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trials" => {
                    out.trials = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--trials needs a number"));
                }
                "--seed" => {
                    out.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs a number"));
                }
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    eprintln!("flags: --trials N   trials per cell (default: per-experiment)\n       --seed S     master seed (default 2017)\n       --quick      shrink the scenario for a fast smoke run");
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
        }
        out
    }

    /// Trials to use, with a per-experiment default.
    pub fn trials_or(&self, default: u32) -> u32 {
        if self.trials == 0 {
            if self.quick {
                (default / 4).max(2)
            } else {
                default
            }
        } else {
            self.trials
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let a = CommonArgs::from_iter(Vec::new());
        assert_eq!(a.seed, 2017);
        assert_eq!(a.trials_or(50), 50);
        let a = CommonArgs::from_iter(vec!["--trials".into(), "7".into(), "--seed".into(), "9".into()]);
        assert_eq!(a.trials_or(50), 7);
        assert_eq!(a.seed, 9);
        let a = CommonArgs::from_iter(vec!["--quick".into()]);
        assert!(a.quick);
        assert_eq!(a.trials_or(48), 12);
    }
}
