//! Minimal flag parsing shared by the experiment binaries.

/// The usage text printed by `--help` and on parse errors.
const USAGE: &str = "flags: --trials N        trials per cell (default: per-experiment)\n       --seed S          master seed (default 2017)\n       --quick           shrink the scenario for a fast smoke run\n       --smoke           alias for --quick\n       --telemetry PATH  write JSONL metrics + failure diagnoses to PATH\n                         (INTANG_TELEMETRY env is the fallback)\n       --progress        live sweep console on stderr\n                         (INTANG_PROGRESS=1 env is the fallback)\n       --profile-folded PATH\n                         enable the span profiler and write folded stacks\n                         to PATH (one 'a;b;c nanos' line per stack)\n       --censor-profile SPEC\n                         run every censor device from a profile: a builtin\n                         name (gfw_prior, gfw_evolved, turkmenistan), a\n                         path to a .toml profile, or a name under\n                         profiles/";

/// Parsed common flags.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Trials per (vantage point, site, strategy) cell.
    pub trials: u32,
    pub seed: u64,
    /// Shrink the scenario for quick runs.
    pub quick: bool,
    /// JSONL telemetry output path (`--telemetry PATH`, or the
    /// `INTANG_TELEMETRY` environment variable when the flag is absent).
    pub telemetry: Option<String>,
    /// Live sweep console on stderr (`--progress`, or `INTANG_PROGRESS=1`
    /// when the flag is absent).
    pub progress: bool,
    /// Folded-stack output path (`--profile-folded PATH`); also enables
    /// span profiling for the run.
    pub profile_folded: Option<String>,
    /// Censor profile spec (`--censor-profile SPEC`): a builtin name, a
    /// path to a profile file, or a bare name resolved under `profiles/`.
    pub censor_profile: Option<String>,
}

impl CommonArgs {
    /// Parse the process arguments; on a bad flag, print the error and
    /// usage to stderr and exit with status 2 (no panic, no backtrace).
    pub fn parse() -> CommonArgs {
        match CommonArgs::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }

    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Result<CommonArgs, String> {
        let mut out = CommonArgs {
            trials: 0,
            seed: 2017,
            quick: false,
            telemetry: None,
            progress: false,
            profile_folded: None,
            censor_profile: None,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--trials" => {
                    out.trials = match it.next() {
                        Some(v) => v.parse().map_err(|_| format!("--trials needs a number, got {v:?}"))?,
                        None => return Err("--trials needs a number".to_string()),
                    };
                }
                "--seed" => {
                    out.seed = match it.next() {
                        Some(v) => v.parse().map_err(|_| format!("--seed needs a number, got {v:?}"))?,
                        None => return Err("--seed needs a number".to_string()),
                    };
                }
                // --smoke is the CI-facing alias: same shrunken scenario.
                "--quick" | "--smoke" => out.quick = true,
                "--telemetry" => {
                    out.telemetry = Some(it.next().ok_or_else(|| "--telemetry needs a path".to_string())?);
                }
                "--progress" => out.progress = true,
                "--profile-folded" => {
                    out.profile_folded = Some(it.next().ok_or_else(|| "--profile-folded needs a path".to_string())?);
                }
                "--censor-profile" => {
                    out.censor_profile = Some(it.next().ok_or_else(|| "--censor-profile needs a name or path".to_string())?);
                }
                "--help" | "-h" => {
                    eprintln!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if out.telemetry.is_none() {
            out.telemetry = std::env::var("INTANG_TELEMETRY").ok().filter(|p| !p.is_empty());
        }
        if !out.progress {
            out.progress = matches!(std::env::var("INTANG_PROGRESS"), Ok(v) if !v.is_empty() && v != "0");
        }
        Ok(out)
    }

    /// Apply the observability flags to this thread: enables span
    /// profiling when `--profile-folded` was given. Call once per binary
    /// before running sweeps.
    pub fn apply_observability(&self) {
        if self.profile_folded.is_some() {
            intang_telemetry::spans::set_thread(Some(true));
        }
    }

    /// Write the merged folded-stack profile to the `--profile-folded`
    /// path (no-op when the flag is absent). One line per observed stack:
    /// `trial;gfw;dpi_scan 12345`.
    pub fn write_profile_folded(&self, profile: &intang_telemetry::SpanSheet) {
        let Some(path) = &self.profile_folded else { return };
        if let Err(e) = std::fs::write(path, profile.folded()) {
            eprintln!("warning: could not write folded profile to {path}: {e}");
        }
    }

    /// Resolve `--censor-profile` into a compiled censor config. `None`
    /// when the flag is absent; on an unresolvable or invalid profile,
    /// print the error and exit with status 2 (the CLI no-panic contract).
    pub fn censor_config(&self) -> Option<intang_gfw::GfwConfig> {
        let spec = self.censor_profile.as_deref()?;
        match intang_gfw::CensorProfile::resolve(spec).and_then(|p| p.compile()) {
            Ok(cfg) => Some(cfg),
            Err(msg) => {
                eprintln!("error: --censor-profile {spec}: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Apply `--censor-profile` to a scenario: every censor device in
    /// every site runs the compiled profile (with per-device heterogeneity
    /// when the profile asks for it). A no-op without the flag; exits 2 on
    /// an unresolvable or invalid profile.
    pub fn apply_censor_profile(&self, scenario: crate::scenario::Scenario) -> crate::scenario::Scenario {
        let Some(spec) = self.censor_profile.as_deref() else {
            return scenario;
        };
        let applied = intang_gfw::CensorProfile::resolve(spec).and_then(|p| scenario.with_custom_censor(&p));
        match applied {
            Ok(s) => s,
            Err(msg) => {
                eprintln!("error: --censor-profile {spec}: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Trials to use, with a per-experiment default.
    pub fn trials_or(&self, default: u32) -> u32 {
        if self.trials == 0 {
            if self.quick {
                (default / 4).max(2)
            } else {
                default
            }
        } else {
            self.trials
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_flags() {
        let a = CommonArgs::parse_from(Vec::new()).unwrap();
        assert_eq!(a.seed, 2017);
        assert_eq!(a.trials_or(50), 50);
        let a = CommonArgs::parse_from(vec!["--trials".into(), "7".into(), "--seed".into(), "9".into()]).unwrap();
        assert_eq!(a.trials_or(50), 7);
        assert_eq!(a.seed, 9);
        let a = CommonArgs::parse_from(vec!["--quick".into()]).unwrap();
        assert!(a.quick);
        assert_eq!(a.trials_or(48), 12);
        let a = CommonArgs::parse_from(vec!["--smoke".into()]).unwrap();
        assert!(a.quick, "--smoke is an alias for --quick");
    }

    #[test]
    fn telemetry_flag_takes_a_path() {
        let a = CommonArgs::parse_from(vec!["--telemetry".into(), "out.jsonl".into()]).unwrap();
        assert_eq!(a.telemetry.as_deref(), Some("out.jsonl"));
    }

    #[test]
    fn observability_flags_parse() {
        let a = CommonArgs::parse_from(vec!["--progress".into(), "--profile-folded".into(), "prof.folded".into()]).unwrap();
        assert!(a.progress);
        assert_eq!(a.profile_folded.as_deref(), Some("prof.folded"));
        assert!(CommonArgs::parse_from(vec!["--profile-folded".into()]).is_err());
    }

    #[test]
    fn censor_profile_flag_takes_a_spec() {
        let a = CommonArgs::parse_from(vec!["--censor-profile".into(), "turkmenistan".into()]).unwrap();
        assert_eq!(a.censor_profile.as_deref(), Some("turkmenistan"));
        assert!(CommonArgs::parse_from(vec!["--censor-profile".into()]).is_err());
        let a = CommonArgs::parse_from(Vec::new()).unwrap();
        assert!(a.censor_profile.is_none());
        assert!(a.censor_config().is_none(), "absent flag resolves to no override");
    }

    #[test]
    fn bad_flags_are_errors_not_panics() {
        assert!(CommonArgs::parse_from(vec!["--trials".into()]).is_err());
        assert!(CommonArgs::parse_from(vec!["--trials".into(), "many".into()]).is_err());
        assert!(CommonArgs::parse_from(vec!["--seed".into(), "0x9".into()]).is_err());
        assert!(CommonArgs::parse_from(vec!["--telemetry".into()]).is_err());
        let err = CommonArgs::parse_from(vec!["--frobnicate".into()]).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }
}
