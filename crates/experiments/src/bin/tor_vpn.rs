//! Regenerates the paper artifact; see `intang_experiments::exps::tor_vpn`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::tor_vpn::run(&args));
}
