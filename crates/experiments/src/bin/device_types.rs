//! Regenerates the §2.1/§8 device-type differentiation; see `exps::device_types`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::device_types::run(&args));
}
