//! Regenerates the paper artifact; see `intang_experiments::exps::table5`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::table5::run(&args));
}
