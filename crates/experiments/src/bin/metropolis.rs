//! Metropolis scale runner: one shared simulated world hosting a large
//! population of concurrent client flows behind a single INTANG shim and
//! a single GFW tap. Sweeps the flow count (1k → 100k by default, higher
//! with `--flows`), reporting per-flow outcome counts, cross-flow
//! interference counters (blacklist collateral resets, TCB evictions,
//! resync storms), throughput (flows/s, events/s) and peak RSS — and
//! verifies at every flow count that per-shard aggregation is
//! byte-identical at 1, 2 and 8 workers.
//!
//! Writes `BENCH_metropolis.json` into the current directory (skipped on
//! `--quick`, so the CI smoke run never clobbers the full artifact).
//! `--smoke` runs a 1k-flow world with simcheck forced on, requires zero
//! invariant violations and zero per-flow ordering regressions, and
//! gates peak RSS against `INTANG_METRO_RSS_MB` when set.
//!
//! Extra flags beyond the common set: `--flows N` caps the sweep at `N`
//! flows (adding `N` as a sweep point), `--shards N` overrides the shard
//! count (default 8).

use intang_experiments::args::CommonArgs;
use intang_experiments::metropolis::{run_metropolis_with_workers, shard_latency_stats, MetroParams, MetroRun};
use intang_gfw::EvictionPolicy;
use intang_telemetry::GaugeId;
use std::fmt::Write as _;
use std::time::Instant;

/// Peak resident-set high-water mark (`VmHWM`) of this process in kB,
/// from `/proc/self/status`. Process-wide and monotonic: a value reported
/// after a sweep point covers everything run so far. `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct Measurement {
    flows: u32,
    wall_s: f64,
    run: MetroRun,
    aggregation_identical: bool,
    peak_rss_kb: Option<u64>,
}

fn measure(flows: u32, seed: u64, shards: u32) -> Measurement {
    let mut p = MetroParams::new(flows, seed);
    p.shards = shards;
    let start = Instant::now();
    let run = run_metropolis_with_workers(&p, 1);
    let wall_s = start.elapsed().as_secs_f64();
    // The event loop is serial by construction; the worker axis is the
    // per-shard aggregation sweep. Re-fold the same outcome grid at 2 and
    // 8 workers and demand byte-identical shard summaries.
    let aggregation_identical = [2usize, 8]
        .iter()
        .all(|&w| intang_experiments::metropolis::aggregate_shards(&run.results, p.shards, w) == run.shards);
    Measurement {
        flows,
        wall_s,
        run,
        aggregation_identical,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// `--smoke`: CI gate. 1k flows with simcheck forced on; fails on any
/// invariant violation, ordering regression, aggregation divergence, or
/// (when `INTANG_METRO_RSS_MB` is set) peak RSS above the ceiling.
fn smoke_gate(seed: u64, shards: u32) -> ! {
    intang_simcheck::set_thread(Some(true));
    let m = measure(1_000, seed, shards);
    let (spawned, succeeded, reset, stalled) = m.run.counts;
    eprintln!(
        "metropolis --smoke: {spawned} flows in {:.2}s ({succeeded} ok / {reset} reset / {stalled} stalled), \
         {} collateral resets, {} evictions, {} storms, {} simcheck violation(s)",
        m.wall_s, m.run.collateral_resets, m.run.tcbs_evicted, m.run.resync_storms, m.run.violations,
    );
    let mut failed = false;
    if m.run.violations > 0 {
        eprintln!(
            "ERROR: simcheck reported {} invariant violation(s); minimal repro artifacts are in {}",
            m.run.violations,
            intang_experiments::simcheck::artifact_dir().display()
        );
        failed = true;
    }
    if m.run.order_violations > 0 {
        eprintln!("ERROR: {} per-flow (time, seq) ordering regression(s)", m.run.order_violations);
        failed = true;
    }
    if !m.aggregation_identical {
        eprintln!("ERROR: shard aggregation diverged across worker counts");
        failed = true;
    }
    if succeeded + reset + stalled != spawned {
        eprintln!(
            "ERROR: {} flow(s) left in a non-terminal state",
            spawned - succeeded - reset - stalled
        );
        failed = true;
    }
    if let Ok(gate) = std::env::var("INTANG_METRO_RSS_MB") {
        let ceiling_mb: u64 = gate.parse().expect("INTANG_METRO_RSS_MB must be a number of megabytes");
        match m.peak_rss_kb {
            Some(kb) if kb / 1024 <= ceiling_mb => {
                eprintln!("  rss gate: peak {} MB <= ceiling {ceiling_mb} MB", kb / 1024);
            }
            Some(kb) => {
                eprintln!("ERROR: peak RSS {} MB exceeds ceiling {ceiling_mb} MB", kb / 1024);
                failed = true;
            }
            None => {
                eprintln!("ERROR: INTANG_METRO_RSS_MB set but /proc/self/status is unreadable");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    // Split off the metropolis-specific flags, delegate the rest.
    let mut flows_cap: Option<u32> = None;
    let mut shards: u32 = 8;
    let mut smoke = false;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--flows" => {
                let v = it.next().unwrap_or_default();
                flows_cap = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --flows needs a number, got {v:?}");
                    std::process::exit(2);
                }));
            }
            "--shards" => {
                let v = it.next().unwrap_or_default();
                shards = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --shards needs a number, got {v:?}");
                    std::process::exit(2);
                });
            }
            _ => {
                smoke |= a == "--smoke";
                rest.push(a);
            }
        }
    }
    let args = match CommonArgs::parse_from(rest) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("metropolis flags: --flows N, --shards N, plus the common set (--quick/--smoke/--seed/...)");
            std::process::exit(2);
        }
    };
    if smoke {
        smoke_gate(args.seed, shards);
    }

    let mut sweep: Vec<u32> = if args.quick { vec![1_000] } else { vec![1_000, 10_000, 100_000] };
    if let Some(cap) = flows_cap {
        sweep.retain(|&f| f < cap);
        sweep.push(cap);
    }
    eprintln!("metropolis: sweeping {sweep:?} flows, {shards} shards, seed {}", args.seed);

    let mut measurements = Vec::new();
    for &flows in &sweep {
        let m = measure(flows, args.seed, shards);
        let (spawned, succeeded, reset, stalled) = m.run.counts;
        eprintln!(
            "  {flows:>8} flows: {:8.2}s  {:>9.0} flows/s  {:>11.0} events/s  \
             {succeeded} ok / {reset} reset / {stalled} stalled  \
             collateral={} evicted={} storms={} rss={}MB identical={}",
            m.wall_s,
            spawned as f64 / m.wall_s,
            m.run.events as f64 / m.wall_s,
            m.run.collateral_resets,
            m.run.tcbs_evicted,
            m.run.resync_storms,
            m.peak_rss_kb.map_or(0, |kb| kb / 1024),
            m.aggregation_identical,
        );
        measurements.push(m);
    }

    // Instrumented pass: rerun the smallest sweep point with the gauge
    // series enabled, strictly after the timed loop so sampling cost never
    // touches the throughput numbers.
    let prev = intang_telemetry::series::set_thread(Some(true));
    let instrumented = measure(sweep[0], args.seed, shards);
    intang_telemetry::series::set_thread(prev);
    let series = instrumented.run.series.as_deref();

    let largest = measurements.last().expect("sweep is non-empty");
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"master_seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let flows_list: Vec<String> = sweep.iter().map(u32::to_string).collect();
    let _ = writeln!(json, "  \"flows_sweep\": [{}],", flows_list.join(", "));
    let _ = writeln!(
        json,
        "  \"censor\": {{\"max_tcbs\": {}, \"eviction\": \"{:?}\"}},",
        MetroParams::new(1, 0).max_tcbs,
        EvictionPolicy::Oldest,
    );
    json.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let (spawned, succeeded, reset, stalled) = m.run.counts;
        let lat = shard_latency_stats(&m.run.shards);
        let _ = write!(
            json,
            "    {{\"flows\": {}, \"wall_s\": {:.3}, \"flows_per_s\": {:.1}, \"events\": {}, \"events_per_s\": {:.0}, \
             \"succeeded\": {succeeded}, \"reset\": {reset}, \"stalled\": {stalled}, \
             \"collateral_resets\": {}, \"tcbs_evicted\": {}, \"resync_storms\": {}, \
             \"order_violations\": {}, \"aggregation_identical_1_2_8\": {}, \"peak_rss_kb\": {}, \
             \"shard_latency_us\": {{\"min\": {:.1}, \"max\": {:.1}, \"avg\": {:.1}, \"empty_shards\": {}}}}}",
            m.flows,
            m.wall_s,
            spawned as f64 / m.wall_s,
            m.run.events,
            m.run.events as f64 / m.wall_s,
            m.run.collateral_resets,
            m.run.tcbs_evicted,
            m.run.resync_storms,
            m.run.order_violations,
            m.aggregation_identical,
            m.peak_rss_kb.map_or_else(|| "null".to_string(), |kb| kb.to_string()),
            lat.min,
            lat.max,
            lat.avg,
            lat.empty,
        );
        json.push_str(if i + 1 < measurements.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"counters\": {");
    let counters: Vec<String> = largest
        .run
        .metrics
        .nonzero_counters()
        .map(|(c, v)| format!("\"{}\": {v}", c.name()))
        .collect();
    json.push_str(&counters.join(", "));
    json.push_str("},\n  \"series\": {");
    let gauges: Vec<String> = series
        .map(|s| {
            GaugeId::ALL
                .iter()
                .filter(|&&id| !s.series(id).is_empty())
                .map(|&id| format!("\"{}\": {}", id.name(), s.series(id).to_json()))
                .collect()
        })
        .unwrap_or_default();
    json.push_str(&gauges.join(", "));
    json.push_str("}\n}\n");

    if !args.quick {
        std::fs::write("BENCH_metropolis.json", &json).expect("write BENCH_metropolis.json");
    }
    println!("{json}");

    let mut failed = false;
    if measurements.iter().any(|m| !m.aggregation_identical) {
        eprintln!("ERROR: shard aggregation diverged across worker counts");
        failed = true;
    }
    if let Some(m) = measurements.iter().find(|m| m.run.order_violations > 0) {
        eprintln!(
            "ERROR: {} per-flow (time, seq) ordering regression(s) at {} flows",
            m.run.order_violations, m.flows
        );
        failed = true;
    }
    let total_violations: u64 = measurements.iter().map(|m| m.run.violations).sum();
    if intang_simcheck::enabled() {
        eprintln!("  simcheck: {total_violations} invariant violation(s) across all runs");
        if total_violations > 0 {
            eprintln!(
                "ERROR: simcheck reported invariant violations; minimal repro artifacts are in {}",
                intang_experiments::simcheck::artifact_dir().display()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
