//! Metropolis scale runner: one shared simulated world hosting a large
//! population of concurrent client flows behind a single INTANG shim and
//! a single GFW tap. Sweeps the flow count (1k → 100k by default, higher
//! with `--flows`), reporting per-flow outcome counts, cross-flow
//! interference counters (blacklist collateral resets, TCB evictions,
//! resync storms), throughput (flows/s, events/s) and peak RSS — and
//! verifies at every flow count that per-shard aggregation is
//! byte-identical at 1, 2 and 8 workers.
//!
//! After the serial sweep the largest point is re-run as parallel event
//! domains (`run_metropolis_domains`): a `domains = 1` serial reference,
//! then the full domain count across 1/2/`--workers` threads, with every
//! cell byte-compared against the reference (outcome grid, counters,
//! metrics). The JSON gains a `parallel` section carrying `cores`,
//! per-worker busy/steal/merge statistics and per-domain event counts —
//! honest numbers: on a 1-core container the wall-clock speedup ceiling
//! is 1x and the report says so rather than inventing throughput.
//!
//! Writes `BENCH_metropolis.json` into the current directory (skipped on
//! `--quick`, so the CI smoke run never clobbers the full artifact).
//! `--smoke` runs a 1k-flow world with simcheck forced on — serial, then
//! a multi-domain parallel leg byte-compared against its serial
//! reference — requires zero invariant violations, zero per-flow
//! ordering regressions and zero serial/parallel divergence, and gates
//! peak RSS against `INTANG_METRO_RSS_MB` when set.
//!
//! Extra flags beyond the common set: `--flows N` caps the sweep at `N`
//! flows (adding `N` as a sweep point), `--shards N` overrides the shard
//! count (default 8), `--domains N` the parallel domain count (default =
//! shards), `--workers N` the max worker-thread count (default = cores),
//! `--middlebox` inserts a strict server-side sequence firewall one hop
//! past the censor, and `--censor-profile SPEC` (common set) runs the
//! censor from a compiled profile instead of the stock evolved model.

use intang_experiments::args::CommonArgs;
use intang_experiments::metropolis::{
    run_metropolis_domains, run_metropolis_with_workers, shard_latency_stats, MetroDomainsRun, MetroParams, MetroRun,
};
use intang_gfw::{EvictionPolicy, GfwConfig};
use intang_telemetry::GaugeId;
use std::fmt::Write as _;
use std::time::Instant;

/// Peak resident-set high-water mark (`VmHWM`) of this process in kB,
/// from `/proc/self/status`. Process-wide and monotonic: a value reported
/// after a sweep point covers everything run so far. `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct Measurement {
    flows: u32,
    wall_s: f64,
    run: MetroRun,
    aggregation_identical: bool,
    peak_rss_kb: Option<u64>,
}

/// Worker threads this container can actually run at once.
fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

struct ParallelMeasurement {
    domains: u32,
    workers: usize,
    wall_s: f64,
    run: MetroDomainsRun,
    /// Byte-identical to the `domains = 1` serial reference.
    identical: bool,
}

/// Field-wise byte comparison of the deterministic payload (wall-clock
/// diagnostics excluded by construction).
fn runs_identical(a: &MetroRun, b: &MetroRun) -> bool {
    a.results == b.results
        && a.counts == b.counts
        && a.shards == b.shards
        && a.events == b.events
        && a.collateral_resets == b.collateral_resets
        && a.tcbs_evicted == b.tcbs_evicted
        && a.resync_storms == b.resync_storms
        && a.metrics == b.metrics
        && a.series == b.series
}

/// Non-sweep knobs shared by every run of one invocation.
#[derive(Clone, Default)]
struct WorldKnobs {
    censor: Option<GfwConfig>,
    middlebox: bool,
}

fn measure_domains(
    flows: u32,
    seed: u64,
    shards: u32,
    knobs: &WorldKnobs,
    domains: u32,
    workers: usize,
    reference: Option<&MetroRun>,
) -> ParallelMeasurement {
    let mut p = MetroParams::new(flows, seed);
    p.shards = shards;
    p.censor = knobs.censor.clone();
    p.middlebox = knobs.middlebox;
    let start = Instant::now();
    let run = run_metropolis_domains(&p, domains, workers);
    let wall_s = start.elapsed().as_secs_f64();
    let identical = reference.is_none_or(|r| runs_identical(r, &run.run));
    ParallelMeasurement {
        domains: run.domains,
        workers: run.workers,
        wall_s,
        run,
        identical,
    }
}

fn measure(flows: u32, seed: u64, shards: u32, knobs: &WorldKnobs) -> Measurement {
    let mut p = MetroParams::new(flows, seed);
    p.shards = shards;
    p.censor = knobs.censor.clone();
    p.middlebox = knobs.middlebox;
    let start = Instant::now();
    let run = run_metropolis_with_workers(&p, 1);
    let wall_s = start.elapsed().as_secs_f64();
    // The event loop is serial by construction; the worker axis is the
    // per-shard aggregation sweep. Re-fold the same outcome grid at 2 and
    // 8 workers and demand byte-identical shard summaries.
    let aggregation_identical = [2usize, 8]
        .iter()
        .all(|&w| intang_experiments::metropolis::aggregate_shards(&run.results, p.shards, w) == run.shards);
    Measurement {
        flows,
        wall_s,
        run,
        aggregation_identical,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// `--smoke`: CI gate. 1k flows with simcheck forced on — the serial
/// loop, then a multi-domain parallel leg byte-compared against its own
/// `domains = 1` reference; fails on any invariant violation, ordering
/// regression, aggregation divergence, serial/parallel divergence, or
/// (when `INTANG_METRO_RSS_MB` is set) peak RSS above the ceiling.
fn smoke_gate(seed: u64, shards: u32, knobs: &WorldKnobs, domains: u32, workers: usize) -> ! {
    intang_simcheck::set_thread(Some(true));
    let m = measure(1_000, seed, shards, knobs);
    let (spawned, succeeded, reset, stalled) = m.run.counts;
    eprintln!(
        "metropolis --smoke: {spawned} flows in {:.2}s ({succeeded} ok / {reset} reset / {stalled} stalled), \
         {} collateral resets, {} evictions, {} storms, {} simcheck violation(s)",
        m.wall_s, m.run.collateral_resets, m.run.tcbs_evicted, m.run.resync_storms, m.run.violations,
    );
    let mut failed = false;
    if m.run.violations > 0 {
        eprintln!(
            "ERROR: simcheck reported {} invariant violation(s); minimal repro artifacts are in {}",
            m.run.violations,
            intang_experiments::simcheck::artifact_dir().display()
        );
        failed = true;
    }
    if m.run.order_violations > 0 {
        eprintln!("ERROR: {} per-flow (time, seq) ordering regression(s)", m.run.order_violations);
        failed = true;
    }
    if !m.aggregation_identical {
        eprintln!("ERROR: shard aggregation diverged across worker counts");
        failed = true;
    }
    if succeeded + reset + stalled != spawned {
        eprintln!(
            "ERROR: {} flow(s) left in a non-terminal state",
            spawned - succeeded - reset - stalled
        );
        failed = true;
    }
    // Parallel leg: the same world as event domains, still under
    // simcheck, byte-compared against its own serial reference.
    let reference = measure_domains(1_000, seed, shards, knobs, 1, 1, None);
    let par = measure_domains(1_000, seed, shards, knobs, domains, workers, Some(&reference.run.run));
    eprintln!(
        "metropolis --smoke (parallel): {} domains x {} workers in {:.2}s, {} events, identical={}, {} simcheck violation(s)",
        par.domains,
        par.workers,
        par.wall_s,
        par.run.run.events,
        par.identical,
        reference.run.run.violations + par.run.run.violations,
    );
    if !par.identical {
        eprintln!(
            "ERROR: parallel metropolis ({} domains, {} workers) diverged from the serial reference",
            par.domains, par.workers
        );
        failed = true;
    }
    if reference.run.run.violations + par.run.run.violations > 0 {
        eprintln!(
            "ERROR: simcheck reported {} invariant violation(s) in the parallel leg; artifacts in {}",
            reference.run.run.violations + par.run.run.violations,
            intang_experiments::simcheck::artifact_dir().display()
        );
        failed = true;
    }
    if par.run.run.order_violations > 0 {
        eprintln!("ERROR: {} ordering regression(s) in the parallel leg", par.run.run.order_violations);
        failed = true;
    }
    if let Ok(gate) = std::env::var("INTANG_METRO_RSS_MB") {
        let ceiling_mb: u64 = gate.parse().expect("INTANG_METRO_RSS_MB must be a number of megabytes");
        // Re-read after the parallel leg: VmHWM is monotonic, so this
        // covers every run in the gate.
        match peak_rss_kb() {
            Some(kb) if kb / 1024 <= ceiling_mb => {
                eprintln!("  rss gate: peak {} MB <= ceiling {ceiling_mb} MB", kb / 1024);
            }
            Some(kb) => {
                eprintln!("ERROR: peak RSS {} MB exceeds ceiling {ceiling_mb} MB", kb / 1024);
                failed = true;
            }
            None => {
                eprintln!("ERROR: INTANG_METRO_RSS_MB set but /proc/self/status is unreadable");
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    // Split off the metropolis-specific flags, delegate the rest.
    let mut flows_cap: Option<u32> = None;
    let mut shards: u32 = 8;
    let mut domains: Option<u32> = None;
    let mut max_workers: Option<usize> = None;
    let mut middlebox = false;
    let mut smoke = false;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    let numeric = |flag: &str, v: Option<String>| -> u64 {
        let v = v.unwrap_or_default();
        v.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} needs a number, got {v:?}");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--flows" => flows_cap = Some(numeric("--flows", it.next()) as u32),
            "--shards" => shards = numeric("--shards", it.next()) as u32,
            "--domains" => domains = Some(numeric("--domains", it.next()) as u32),
            "--workers" => max_workers = Some(numeric("--workers", it.next()) as usize),
            "--middlebox" => middlebox = true,
            _ => {
                smoke |= a == "--smoke";
                rest.push(a);
            }
        }
    }
    let args = match CommonArgs::parse_from(rest) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "metropolis flags: --flows N, --shards N, --domains N, --workers N, --middlebox, \
                 plus the common set (--quick/--smoke/--seed/--censor-profile/...)"
            );
            std::process::exit(2);
        }
    };
    let knobs = WorldKnobs {
        censor: args.censor_config(),
        middlebox,
    };
    let domains = domains.unwrap_or(shards).clamp(1, shards.max(1));
    let max_workers = max_workers.unwrap_or_else(cores).clamp(1, domains as usize);
    if smoke {
        smoke_gate(args.seed, shards, &knobs, domains, max_workers.max(2).min(domains as usize));
    }

    let mut sweep: Vec<u32> = if args.quick { vec![1_000] } else { vec![1_000, 10_000, 100_000] };
    if let Some(cap) = flows_cap {
        sweep.retain(|&f| f < cap);
        sweep.push(cap);
    }
    eprintln!("metropolis: sweeping {sweep:?} flows, {shards} shards, seed {}", args.seed);

    let mut measurements = Vec::new();
    for &flows in &sweep {
        let m = measure(flows, args.seed, shards, &knobs);
        let (spawned, succeeded, reset, stalled) = m.run.counts;
        eprintln!(
            "  {flows:>8} flows: {:8.2}s  {:>9.0} flows/s  {:>11.0} events/s  \
             {succeeded} ok / {reset} reset / {stalled} stalled  \
             collateral={} evicted={} storms={} rss={}MB identical={}",
            m.wall_s,
            spawned as f64 / m.wall_s,
            m.run.events as f64 / m.wall_s,
            m.run.collateral_resets,
            m.run.tcbs_evicted,
            m.run.resync_storms,
            m.peak_rss_kb.map_or(0, |kb| kb / 1024),
            m.aggregation_identical,
        );
        measurements.push(m);
    }

    // Instrumented pass: rerun the smallest sweep point with the gauge
    // series enabled, strictly after the timed loop so sampling cost never
    // touches the throughput numbers.
    let prev = intang_telemetry::series::set_thread(Some(true));
    let instrumented = measure(sweep[0], args.seed, shards, &knobs);
    intang_telemetry::series::set_thread(prev);
    let series = instrumented.run.series.as_deref();

    // Parallel event domains: the largest sweep point again, as a
    // `domains = 1` serial reference and then the full domain count at
    // 1/2/max worker threads, each cell byte-compared to the reference.
    let par_flows = *sweep.last().expect("sweep is non-empty");
    let ncores = cores();
    if max_workers > ncores {
        eprintln!(
            "warning: {max_workers} worker threads on {ncores} core(s); wall-clock speedup is bounded by cores \
             (per-worker busy seconds below measure the work actually overlapped)"
        );
    }
    eprintln!("metropolis: parallel domains at {par_flows} flows, {domains} domains, up to {max_workers} workers ({ncores} cores)");
    let par_reference = measure_domains(par_flows, args.seed, shards, &knobs, 1, 1, None);
    eprintln!(
        "  reference   1 domain  x 1w: {:8.2}s  {:>11.0} events/s",
        par_reference.wall_s,
        par_reference.run.run.events as f64 / par_reference.wall_s,
    );
    // Always include the full-width cell (workers = domains) so the
    // artifact documents the many-threads-few-cores ceiling explicitly.
    let mut worker_axis = vec![1usize, 2, max_workers, domains as usize];
    worker_axis.sort_unstable();
    worker_axis.dedup();
    worker_axis.retain(|&w| w <= domains as usize);
    let mut parallel = Vec::new();
    for &w in &worker_axis {
        let m = measure_domains(par_flows, args.seed, shards, &knobs, domains, w, Some(&par_reference.run.run));
        eprintln!(
            "  {:>3} domains x {}w: {:8.2}s  {:>11.0} events/s  speedup={:.2}x  identical={}  steals={}/{} failed",
            m.domains,
            m.workers,
            m.wall_s,
            m.run.run.events as f64 / m.wall_s,
            par_reference.wall_s / m.wall_s,
            m.identical,
            m.run.worker_stats.iter().map(|s| s.steal_attempts).sum::<u64>(),
            m.run.worker_stats.iter().map(|s| s.steal_failures).sum::<u64>(),
        );
        parallel.push(m);
    }

    // Span-profiler pass: rerun the largest sweep point with the span
    // stack on and export the folded profile — the tool that localized
    // the 10k -> 100k flows/s collapse to the server-cell TTL backlog.
    if args.profile_folded.is_some() {
        let prev = intang_telemetry::spans::set_thread(Some(true));
        let _ = measure(par_flows, args.seed, shards, &knobs);
        let profile = intang_telemetry::spans::take_thread();
        intang_telemetry::spans::set_thread(prev);
        args.write_profile_folded(&profile);
    }

    let largest = measurements.last().expect("sweep is non-empty");
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"master_seed\": {},", args.seed);
    let _ = writeln!(json, "  \"shards\": {shards},");
    let _ = writeln!(json, "  \"cores\": {ncores},");
    let flows_list: Vec<String> = sweep.iter().map(u32::to_string).collect();
    let _ = writeln!(json, "  \"flows_sweep\": [{}],", flows_list.join(", "));
    let _ = writeln!(
        json,
        "  \"censor\": {{\"max_tcbs\": {}, \"eviction\": \"{:?}\", \"profile\": \"{}\", \"middlebox\": {}}},",
        MetroParams::new(1, 0).max_tcbs,
        EvictionPolicy::Oldest,
        args.censor_profile.as_deref().unwrap_or("builtin-evolved"),
        middlebox,
    );
    json.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let (spawned, succeeded, reset, stalled) = m.run.counts;
        let lat = shard_latency_stats(&m.run.shards);
        let _ = write!(
            json,
            "    {{\"flows\": {}, \"wall_s\": {:.3}, \"flows_per_s\": {:.1}, \"events\": {}, \"events_per_s\": {:.0}, \
             \"succeeded\": {succeeded}, \"reset\": {reset}, \"stalled\": {stalled}, \
             \"collateral_resets\": {}, \"tcbs_evicted\": {}, \"resync_storms\": {}, \
             \"order_violations\": {}, \"aggregation_identical_1_2_8\": {}, \"peak_rss_kb\": {}, \
             \"shard_latency_us\": {{\"min\": {:.1}, \"max\": {:.1}, \"avg\": {:.1}, \"empty_shards\": {}}}}}",
            m.flows,
            m.wall_s,
            spawned as f64 / m.wall_s,
            m.run.events,
            m.run.events as f64 / m.wall_s,
            m.run.collateral_resets,
            m.run.tcbs_evicted,
            m.run.resync_storms,
            m.run.order_violations,
            m.aggregation_identical,
            m.peak_rss_kb.map_or_else(|| "null".to_string(), |kb| kb.to_string()),
            lat.min,
            lat.max,
            lat.avg,
            lat.empty,
        );
        json.push_str(if i + 1 < measurements.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Parallel event domains: the determinism grid plus honest executor
    // numbers. `identical` is the byte-comparison against the serial
    // reference; busy/steal/merge are wall-clock diagnostics and vary run
    // to run.
    let _ = writeln!(json, "  \"parallel\": {{");
    let _ = writeln!(json, "    \"flows\": {par_flows},");
    let _ = writeln!(json, "    \"domains\": {domains},");
    let _ = writeln!(
        json,
        "    \"note\": \"wall-clock speedup is bounded by cores ({ncores}); per-worker busy_s measures overlapped work\","
    );
    let _ = writeln!(
        json,
        "    \"reference\": {{\"domains\": 1, \"workers\": 1, \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0}}},",
        par_reference.wall_s,
        par_reference.run.run.events,
        par_reference.run.run.events as f64 / par_reference.wall_s,
    );
    json.push_str("    \"runs\": [\n");
    for (i, m) in parallel.iter().enumerate() {
        let workers_json: Vec<String> = m
            .run
            .worker_stats
            .iter()
            .map(|s| {
                format!(
                    "{{\"busy_s\": {:.3}, \"merge_wait_s\": {:.6}, \"steal_attempts\": {}, \"steal_failures\": {}}}",
                    s.busy.as_secs_f64(),
                    s.merge_wait.as_secs_f64(),
                    s.steal_attempts,
                    s.steal_failures,
                )
            })
            .collect();
        let domains_json: Vec<String> = m
            .run
            .domain_stats
            .iter()
            .map(|d| {
                format!(
                    "{{\"domain\": {}, \"events\": {}, \"flows\": {}, \"busy_s\": {:.3}}}",
                    d.domain,
                    d.events,
                    d.flows_owned,
                    d.busy.as_secs_f64()
                )
            })
            .collect();
        let _ = write!(
            json,
            "      {{\"domains\": {}, \"workers\": {}, \"wall_s\": {:.3}, \"flows_per_s\": {:.1}, \"events_per_s\": {:.0}, \
             \"speedup_vs_serial\": {:.3}, \"aggregation_identical\": {}, \"order_violations\": {}, \
             \"worker_stats\": [{}], \"domain_stats\": [{}]}}",
            m.domains,
            m.workers,
            m.wall_s,
            m.run.run.counts.0 as f64 / m.wall_s,
            m.run.run.events as f64 / m.wall_s,
            par_reference.wall_s / m.wall_s,
            m.identical,
            m.run.run.order_violations,
            workers_json.join(", "),
            domains_json.join(", "),
        );
        json.push_str(if i + 1 < parallel.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ]\n  },\n  \"counters\": {");
    let counters: Vec<String> = largest
        .run
        .metrics
        .nonzero_counters()
        .map(|(c, v)| format!("\"{}\": {v}", c.name()))
        .collect();
    json.push_str(&counters.join(", "));
    json.push_str("},\n  \"series\": {");
    let gauges: Vec<String> = series
        .map(|s| {
            GaugeId::ALL
                .iter()
                .filter(|&&id| !s.series(id).is_empty())
                .map(|&id| format!("\"{}\": {}", id.name(), s.series(id).to_json()))
                .collect()
        })
        .unwrap_or_default();
    json.push_str(&gauges.join(", "));
    json.push_str("}\n}\n");

    if !args.quick {
        std::fs::write("BENCH_metropolis.json", &json).expect("write BENCH_metropolis.json");
    }
    println!("{json}");

    let mut failed = false;
    if measurements.iter().any(|m| !m.aggregation_identical) {
        eprintln!("ERROR: shard aggregation diverged across worker counts");
        failed = true;
    }
    if let Some(m) = parallel.iter().find(|m| !m.identical) {
        eprintln!(
            "ERROR: parallel metropolis ({} domains, {} workers) diverged from the serial reference",
            m.domains, m.workers
        );
        failed = true;
    }
    if let Some(m) = parallel.iter().find(|m| m.run.run.order_violations > 0) {
        eprintln!(
            "ERROR: {} ordering regression(s) in the parallel run at {} workers",
            m.run.run.order_violations, m.workers
        );
        failed = true;
    }
    if let Some(m) = measurements.iter().find(|m| m.run.order_violations > 0) {
        eprintln!(
            "ERROR: {} per-flow (time, seq) ordering regression(s) at {} flows",
            m.run.order_violations, m.flows
        );
        failed = true;
    }
    let total_violations: u64 = measurements.iter().map(|m| m.run.violations).sum::<u64>()
        + parallel.iter().map(|m| m.run.run.violations).sum::<u64>()
        + par_reference.run.run.violations;
    if intang_simcheck::enabled() {
        eprintln!("  simcheck: {total_violations} invariant violation(s) across all runs");
        if total_violations > 0 {
            eprintln!(
                "ERROR: simcheck reported invariant violations; minimal repro artifacts are in {}",
                intang_experiments::simcheck::artifact_dir().display()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
