//! Regenerates the §8 arms-race sweep; see `intang_experiments::exps::arms_race`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::arms_race::run(&args));
}
