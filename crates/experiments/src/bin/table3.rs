//! Regenerates the paper artifact; see `intang_experiments::exps::table3`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::table3::run(&args));
}
