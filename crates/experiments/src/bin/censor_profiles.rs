//! Censor-profile gate and generator.
//!
//! Default (check) mode — the CI gate:
//!
//! 1. every `profiles/*.toml` parses, round-trips through the canonical
//!    serializer, and compiles to a valid censor config;
//! 2. the checked-in files named after builtins (`gfw_prior`,
//!    `gfw_evolved`, `turkmenistan`) are equal to the builtin
//!    constructors — the files are the source of truth the docs point at,
//!    so they must not drift from the code;
//! 3. a quick paper sweep driven by the *file-loaded* `gfw_prior` +
//!    `gfw_evolved` profiles is byte-compared — rows, events, merged
//!    metrics, per-trial diagnoses — against the builtin-model sweep at
//!    1, 2 and 8 workers;
//! 4. a turkmenistan smoke scenario: the file-loaded profile must block
//!    with spoofed 403 blockpages, never forge SYN/ACKs (no type-2
//!    blacklist machinery), and produce an outcome grid distinct from
//!    the GFW models'.
//!
//! `--write-builtins` regenerates the checked-in files from the builtin
//! constructors via the canonical serializer. `--dir D` overrides the
//! profile directory (default `profiles/`). Exit codes: 0 clean, 1 gate
//! failure, 2 usage error.

use intang_core::StrategyKind;
use intang_experiments::args::CommonArgs;
use intang_experiments::runner::{sweep_with_threads, SweepConfig};
use intang_experiments::scenario::Scenario;
use intang_gfw::CensorProfile;
use intang_telemetry::Counter;
use std::path::{Path, PathBuf};

fn fail(msg: &str) -> ! {
    eprintln!("censor_profiles: FAIL: {msg}");
    std::process::exit(1);
}

fn write_builtins(dir: &Path) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    for name in CensorProfile::BUILTIN_NAMES {
        let profile = CensorProfile::builtin(name).expect("builtin names enumerate builtins");
        let path = dir.join(format!("{name}.toml"));
        if let Err(e) = std::fs::write(&path, profile.to_text()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {}", path.display());
    }
}

/// Gate 1+2: parse, round-trip and compile every profile file; compare
/// builtin-named files against the constructors.
fn check_files(dir: &Path) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => fail(&format!(
            "cannot read profile dir {} ({e}); run with --write-builtins first",
            dir.display()
        )),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        fail(&format!("no .toml profiles in {}", dir.display()));
    }
    for path in &paths {
        let profile = match CensorProfile::load(path) {
            Ok(p) => p,
            Err(e) => fail(&format!("{}: {e}", path.display())),
        };
        let reparsed = match CensorProfile::parse(&profile.to_text()) {
            Ok(p) => p,
            Err(e) => fail(&format!("{}: canonical text does not re-parse: {e}", path.display())),
        };
        if reparsed != profile {
            fail(&format!("{}: profile does not round-trip the text format", path.display()));
        }
        if let Err(e) = profile.compile() {
            fail(&format!("{}: does not compile: {e}", path.display()));
        }
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or_default();
        if let Some(builtin) = CensorProfile::builtin(stem) {
            if profile != builtin {
                fail(&format!(
                    "{}: drifted from the builtin `{stem}` model; regenerate with --write-builtins",
                    path.display()
                ));
            }
        }
        println!("  ok: {}", path.display());
    }
}

fn load_builtin_file(dir: &Path, name: &str) -> CensorProfile {
    match CensorProfile::load(&dir.join(format!("{name}.toml"))) {
        Ok(p) => p,
        Err(e) => fail(&format!("{name}.toml: {e}")),
    }
}

/// Gate 3: the file-driven GFW sweep is byte-identical to the builtin
/// models at every worker count.
fn check_gfw_sweep(dir: &Path, seed: u64) {
    let prior = load_builtin_file(dir, "gfw_prior");
    let evolved = load_builtin_file(dir, "gfw_evolved");
    let builtin = Scenario::smoke(seed);
    let from_files = match Scenario::smoke(seed).with_profiles(&prior, &evolved) {
        Ok(s) => s,
        Err(e) => fail(&format!("profile scenario: {e}")),
    };
    let cfg = SweepConfig::new(Some(StrategyKind::ImprovedTeardown), true, 3, seed);
    let reference = sweep_with_threads(&builtin, &cfg, 1);
    for workers in [1usize, 2, 8] {
        let run = sweep_with_threads(&from_files, &cfg, workers);
        if run.rows != reference.rows {
            fail(&format!("profile sweep rows diverge from builtin at {workers} workers"));
        }
        if run.events != reference.events {
            fail(&format!("profile sweep events diverge from builtin at {workers} workers"));
        }
        if run.metrics != reference.metrics {
            fail(&format!("profile sweep metrics diverge from builtin at {workers} workers"));
        }
        if run.diagnoses != reference.diagnoses {
            fail(&format!("profile sweep diagnoses diverge from builtin at {workers} workers"));
        }
        println!("  ok: gfw profile sweep byte-identical to builtin at {workers} workers");
    }
}

/// Gate 4: the turkmenistan profile behaves like a different censor, not
/// a re-skinned GFW.
fn check_turkmenistan_smoke(dir: &Path, seed: u64) {
    let tk = load_builtin_file(dir, "turkmenistan");
    let scenario = match Scenario::smoke(seed).with_custom_censor(&tk) {
        Ok(s) => s,
        Err(e) => fail(&format!("turkmenistan scenario: {e}")),
    };
    // No evasion, keyword on: every trial provokes the censor.
    let cfg = SweepConfig::new(Some(StrategyKind::NoStrategy), true, 3, seed);
    let run = sweep_with_threads(&scenario, &cfg, 2);
    let blockpages = run.metrics.counter(Counter::GfwBlockpagesInjected);
    if blockpages == 0 {
        fail("turkmenistan smoke injected no blockpages");
    }
    let synacks = run.metrics.counter(Counter::GfwForgedSynacks);
    if synacks != 0 {
        fail(&format!(
            "turkmenistan must not forge SYN/ACKs (no type-2 blacklist), saw {synacks}"
        ));
    }
    if run.metrics.counter(Counter::GfwProfileTurkmenistanDevices) == 0 {
        fail("turkmenistan trials must be tagged with the profile device counter");
    }
    let gfw = sweep_with_threads(&Scenario::smoke(seed), &cfg, 2);
    if run.rows == gfw.rows && run.metrics == gfw.metrics {
        fail("turkmenistan smoke is indistinguishable from the builtin GFW");
    }
    println!("  ok: turkmenistan smoke — {blockpages} blockpages, 0 forged SYN/ACKs, grid distinct from GFW");
}

fn main() {
    let mut dir = PathBuf::from("profiles");
    let mut write = false;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--write-builtins" => write = true,
            "--dir" => {
                dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("error: --dir needs a path");
                    std::process::exit(2);
                }));
            }
            _ => rest.push(a),
        }
    }
    let args = match CommonArgs::parse_from(rest) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("censor_profiles flags: --write-builtins, --dir D, plus the common set (--seed/...)");
            std::process::exit(2);
        }
    };
    if write {
        write_builtins(&dir);
        return;
    }
    check_files(&dir);
    check_gfw_sweep(&dir, args.seed);
    check_turkmenistan_smoke(&dir, args.seed);
    println!("censor_profiles: OK");
}
