//! Regenerates the §6 adaptive-convergence curve; see `exps::convergence`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::convergence::run(&args));
}
