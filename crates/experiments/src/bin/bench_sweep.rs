//! Sweep-executor benchmark: runs a fixed-seed multi-strategy sweep at
//! several worker counts and reports wall time, trials/sec, events/sec and
//! speedup vs the serial (1-worker) run, verifying along the way that every
//! worker count produces byte-identical aggregates. Also reports the
//! machine's available cores (warning when a worker count exceeds them —
//! those "speedups" are scheduler artifacts), per-worker busy time with
//! contention counters (merge-mutex wait, steal attempts/failures) and the
//! streaming merge's reorder high-water mark per run, event-batching
//! statistics, the wire pool's and recycling arenas' hit/miss counters,
//! and — built with `--features alloc-count` — heap allocations per trial
//! at steady state. After the timed measurements an *instrumented* serial
//! pass (gauge series + span profiler enabled) populates the `series` and
//! `profile` sections, so observability cost never touches the throughput
//! numbers.
//!
//! Writes `BENCH_sweep.json` into the current directory. `--quick` shrinks
//! the workload to a smoke-test size (used by `scripts/ci.sh`); `--smoke`
//! additionally gates serial throughput against the blessed baseline in
//! `scripts/bench_smoke_baseline.txt` (set `INTANG_BLESS=1` to re-bless on
//! a new machine). `INTANG_THREADS` caps the "max" worker count.
//! `--progress` draws the live sweep console during the measurement loop;
//! `--profile-folded PATH` writes the instrumented pass's folded stacks.

use intang_core::{Discrepancy, StrategyKind};
use intang_experiments::args::CommonArgs;
use intang_experiments::progress::Progress;
use intang_experiments::runner::{overall, sweep_with_threads, worker_count, SweepConfig, SweepRun};
use intang_experiments::scenario::Scenario;
use intang_telemetry::{GaugeId, SpanId};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: intang_telemetry::alloc::CountingAlloc = intang_telemetry::alloc::CountingAlloc;

/// Fraction of the blessed serial events/s the smoke gate tolerates.
/// Wide on purpose: on a shared single-vCPU container, identical runs
/// vary by ±25%, so the gate blesses the median sample and compares the
/// best sample against this floor — catching real (structural) slowdowns
/// without flaking on scheduler noise.
const SMOKE_FLOOR: f64 = 0.75;

struct Workload {
    name: &'static str,
    scenario: Scenario,
    trials: u32,
    strategies: Vec<(&'static str, Option<StrategyKind>)>,
}

fn workload(quick: bool) -> Workload {
    let strategies: Vec<(&'static str, Option<StrategyKind>)> = vec![
        ("no-strategy", Some(StrategyKind::NoStrategy)),
        ("in-order-overlap", Some(StrategyKind::InOrderOverlap(Discrepancy::SmallTtl))),
        ("improved-teardown", Some(StrategyKind::ImprovedTeardown)),
        ("tcb-creation+resync-desync", Some(StrategyKind::TcbCreationResyncDesync)),
        ("teardown+tcb-reversal", Some(StrategyKind::TeardownTcbReversal)),
    ];
    if quick {
        Workload {
            name: "smoke",
            scenario: Scenario::smoke(2017),
            trials: 2,
            strategies: strategies.into_iter().take(2).collect(),
        }
    } else {
        Workload {
            name: "paper_inside",
            scenario: Scenario::paper_inside(2017),
            trials: 3,
            strategies,
        }
    }
}

struct Measurement {
    threads: usize,
    wall_s: f64,
    trials: u64,
    events: u64,
    identical_to_serial: bool,
    /// Per-worker busy time, summed across the workload's strategy sweeps
    /// (worker i of each sweep maps to slot i).
    busy_s: Vec<f64>,
    /// Per-worker time spent waiting on the ordered-merge mutex.
    merge_wait_s: Vec<f64>,
    /// Per-worker cursor claims (successful + failed).
    steal_attempts: Vec<u64>,
    /// Per-worker claims that found the cursor exhausted.
    steal_failures: Vec<u64>,
    /// Largest reorder window the streaming merge buffered in any sweep.
    merge_high_water: usize,
}

fn run_all(w: &Workload, threads: usize, progress: bool) -> (Vec<SweepRun>, f64) {
    let bar = progress.then(|| {
        let cells = w.scenario.vantage_points.len() * w.scenario.websites.len();
        Progress::start(&format!("bench/{threads}w"), w.strategies.len() * cells, threads)
    });
    let start = Instant::now();
    let runs = w
        .strategies
        .iter()
        .map(|(_, kind)| {
            let mut cfg = SweepConfig::new(*kind, true, w.trials, 2017);
            cfg.route_change_prob = 0.12;
            cfg.progress = bar.clone();
            sweep_with_threads(&w.scenario, &cfg, threads)
        })
        .collect();
    (runs, start.elapsed().as_secs_f64())
}

/// `--smoke`: serial-only throughput gate for CI. Takes five multi-run
/// samples of the quick workload and compares the best events/s against
/// the blessed baseline (written on first run or with `INTANG_BLESS=1` —
/// the *median* sample, so a lucky scheduling moment can't bless an
/// unreachable bar).
/// Baselines are machine-specific, so the file lives out of tree unless
/// deliberately checked in.
fn smoke_gate() -> ! {
    let w = workload(true);
    let baseline_path = std::path::Path::new("scripts/bench_smoke_baseline.txt");
    // A single quick run is only a few ms — hopeless to time on a busy
    // machine. Each sample aggregates 8 consecutive runs (~50 ms of
    // work); warm up once, then take 5 samples.
    let _ = run_all(&w, 1, false);
    let mut rates: Vec<f64> = (0..5)
        .map(|_| {
            let (mut events, mut wall_s) = (0u64, 0.0f64);
            for _ in 0..8 {
                let (runs, w_s) = run_all(&w, 1, false);
                events += runs.iter().map(|r| r.events).sum::<u64>();
                wall_s += w_s;
            }
            events as f64 / wall_s
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    let (median, best) = (rates[2], rates[4]);
    let bless = std::env::var("INTANG_BLESS").is_ok_and(|v| v == "1");
    let baseline: Option<f64> = std::fs::read_to_string(baseline_path).ok().and_then(|s| s.trim().parse().ok());
    match baseline {
        Some(base) if !bless => {
            let floor = base * SMOKE_FLOOR;
            eprintln!("bench_sweep --smoke: serial {best:.0} events/s, blessed baseline {base:.0} (floor {floor:.0})");
            if best < floor {
                eprintln!(
                    "ERROR: serial throughput regressed more than {}% below the blessed baseline",
                    100.0 - SMOKE_FLOOR * 100.0
                );
                std::process::exit(1);
            }
            std::process::exit(0);
        }
        _ => {
            std::fs::write(baseline_path, format!("{median:.0}\n")).expect("write smoke baseline");
            eprintln!(
                "bench_sweep --smoke: blessed new baseline {median:.0} events/s (median sample) -> {}",
                baseline_path.display()
            );
            std::process::exit(0);
        }
    }
}

fn main() {
    let args = CommonArgs::parse();
    let quick = args.quick;
    if std::env::args().any(|a| a == "--smoke") {
        smoke_gate();
    }
    let w = workload(quick);
    let max = worker_count();
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let mut thread_counts = vec![1usize, 4, max];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    eprintln!(
        "bench_sweep: scenario={} ({} VPs x {} sites), {} strategies, {} trials/cell, worker counts {:?}, {} core(s)",
        w.name,
        w.scenario.vantage_points.len(),
        w.scenario.websites.len(),
        w.strategies.len(),
        w.trials,
        thread_counts,
        cores,
    );
    if thread_counts.iter().any(|&t| t > cores) {
        eprintln!(
            "  WARNING: some worker counts exceed the machine's {cores} available core(s); \
             their \"speedup\" measures scheduler time-slicing, not parallel hardware"
        );
    }
    intang_netsim::batch::reset_stats();

    let mut serial_runs: Option<Vec<SweepRun>> = None;
    let mut serial_wall = 0.0f64;
    let mut measurements = Vec::new();
    let mut total_violations = 0u64;
    for &threads in &thread_counts {
        let (runs, wall_s) = run_all(&w, threads, args.progress);
        let trials: u64 = runs.iter().map(|r| r.trials).sum();
        let events: u64 = runs.iter().map(|r| r.events).sum();
        total_violations += runs.iter().map(|r| r.violations).sum::<u64>();
        let mut busy_s = vec![0.0f64; threads];
        let mut merge_wait_s = vec![0.0f64; threads];
        let mut steal_attempts = vec![0u64; threads];
        let mut steal_failures = vec![0u64; threads];
        let mut merge_high_water = 0usize;
        for r in &runs {
            for (slot, ws) in r.worker_stats.iter().enumerate().take(threads) {
                busy_s[slot] += ws.busy.as_secs_f64();
                merge_wait_s[slot] += ws.merge_wait.as_secs_f64();
                steal_attempts[slot] += ws.steal_attempts;
                steal_failures[slot] += ws.steal_failures;
            }
            merge_high_water = merge_high_water.max(r.merge_high_water);
        }
        let identical = match &serial_runs {
            None => {
                serial_wall = wall_s;
                serial_runs = Some(runs);
                true
            }
            Some(serial) => serial
                .iter()
                .zip(&runs)
                .all(|(a, b)| a.rows == b.rows && a.events == b.events && a.metrics == b.metrics && a.diagnoses == b.diagnoses),
        };
        eprintln!(
            "  {threads:>3} workers: {wall_s:8.2}s  {:>9.1} trials/s  {:>11.0} events/s  speedup {:>5.2}x  identical={identical}",
            trials as f64 / wall_s,
            events as f64 / wall_s,
            serial_wall / wall_s,
        );
        measurements.push(Measurement {
            threads,
            wall_s,
            trials,
            events,
            identical_to_serial: identical,
            busy_s,
            merge_wait_s,
            steal_attempts,
            steal_failures,
            merge_high_water,
        });
    }
    let (batches, batched_events, batch_hist) = intang_netsim::batch::stats();

    // Steady-state allocation profile: the loop above warmed every scratch
    // buffer and code path; rerun the serial workload with the counters
    // zeroed. Pool counters are always available; the heap-allocation
    // counter needs the `alloc-count` feature (reported as null without it).
    intang_packet::wire::reset_pool_stats();
    intang_packet::arena::reset_stats();
    #[cfg(feature = "alloc-count")]
    intang_telemetry::alloc::reset_alloc_count();
    let (steady_runs, steady_wall) = run_all(&w, 1, false);
    #[cfg(feature = "alloc-count")]
    let allocs_per_trial: Option<f64> = {
        let steady_trials: u64 = steady_runs.iter().map(|r| r.trials).sum();
        Some(intang_telemetry::alloc::alloc_count() as f64 / steady_trials as f64)
    };
    let (pool_hits, pool_misses) = intang_packet::wire::pool_stats();
    let (arena_hits, arena_misses) = intang_packet::arena::stats();
    #[cfg(not(feature = "alloc-count"))]
    let allocs_per_trial: Option<f64> = None;
    let pool_hit_rate = pool_hits as f64 / (pool_hits + pool_misses).max(1) as f64;
    let arena_hit_rate = arena_hits as f64 / (arena_hits + arena_misses).max(1) as f64;
    eprintln!(
        "  steady state: {steady_wall:.2}s, wire pool {pool_hits} hits / {pool_misses} misses ({:.1}% hit), \
         arenas {arena_hits} hits / {arena_misses} misses ({:.1}% hit), allocs/trial {}",
        pool_hit_rate * 100.0,
        arena_hit_rate * 100.0,
        allocs_per_trial.map_or("n/a (build with --features alloc-count)".to_string(), |a| format!("{a:.1}")),
    );
    drop(steady_runs);

    // Allocation ceiling gate (CI): INTANG_ALLOC_GATE=<max> fails the run
    // if the steady-state heap-allocation rate regresses past the ceiling.
    // Requires the counting allocator — a gate that cannot count must fail
    // loudly rather than pass vacuously.
    if let Ok(gate) = std::env::var("INTANG_ALLOC_GATE") {
        let ceiling: f64 = gate.parse().expect("INTANG_ALLOC_GATE must be a number");
        match allocs_per_trial {
            Some(a) if a < ceiling => {
                eprintln!("  alloc gate: {a:.1} allocs/trial < ceiling {ceiling}");
            }
            Some(a) => {
                eprintln!("bench_sweep: FAIL: {a:.1} allocs/trial >= ceiling {ceiling}");
                std::process::exit(1);
            }
            None => {
                eprintln!("bench_sweep: FAIL: INTANG_ALLOC_GATE set but binary lacks --features alloc-count");
                std::process::exit(1);
            }
        }
    }

    // Instrumented pass: one serial run with the gauge series and the span
    // profiler switched on. Kept strictly after the timed measurements so
    // the observability cost never leaks into the throughput numbers.
    let prev_series = intang_telemetry::series::set_thread(Some(true));
    let prev_spans = intang_telemetry::spans::set_thread(Some(true));
    let (instrumented_runs, instrumented_wall) = run_all(&w, 1, false);
    intang_telemetry::series::set_thread(prev_series);
    intang_telemetry::spans::set_thread(prev_spans);
    let mut series = intang_telemetry::SeriesSheet::new();
    let mut profile = intang_telemetry::SpanSheet::new();
    let mut instrumented_busy = Duration::ZERO;
    for r in &instrumented_runs {
        if let Some(s) = &r.series {
            series.merge(s);
        }
        profile.merge(&r.profile());
        for ws in &r.worker_stats {
            instrumented_busy += ws.busy;
        }
    }
    let busy_coverage = profile.total_self_nanos() as f64 / (instrumented_busy.as_nanos().max(1) as f64);
    eprintln!(
        "  instrumented: {instrumented_wall:.2}s serial; profile covers {:.1}% of worker busy time",
        busy_coverage * 100.0,
    );
    args.write_profile_folded(&profile);
    drop(instrumented_runs);

    let serial = serial_runs.expect("at least one worker count ran");
    let success_rates: Vec<(&str, f64)> = w
        .strategies
        .iter()
        .zip(&serial)
        .map(|((name, _), run)| (*name, overall(&run.rows).success_rate()))
        .collect();

    // Merged telemetry counters across all strategies (serial run).
    let mut merged = intang_telemetry::MetricsSheet::new();
    for run in &serial {
        merged.merge(&run.metrics);
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"scenario\": \"{}\",", w.name);
    let _ = writeln!(
        json,
        "  \"vantage_points\": {},\n  \"websites\": {},\n  \"trials_per_cell\": {},\n  \"master_seed\": 2017,",
        w.scenario.vantage_points.len(),
        w.scenario.websites.len(),
        w.trials,
    );
    let names: Vec<String> = w.strategies.iter().map(|(n, _)| format!("\"{n}\"")).collect();
    let _ = writeln!(json, "  \"strategies\": [{}],", names.join(", "));
    json.push_str("  \"overall_success_rate\": {");
    let rates: Vec<String> = success_rates.iter().map(|(n, r)| format!("\"{n}\": {r:.4}")).collect();
    json.push_str(&rates.join(", "));
    json.push_str("},\n  \"counters\": {");
    let counters: Vec<String> = merged.nonzero_counters().map(|(c, v)| format!("\"{}\": {v}", c.name())).collect();
    json.push_str(&counters.join(", "));
    json.push_str("},\n");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(
        json,
        "  \"wire_pool\": {{\"hits\": {pool_hits}, \"misses\": {pool_misses}, \"hit_rate\": {pool_hit_rate:.4}}},"
    );
    let _ = writeln!(
        json,
        "  \"arenas\": {{\"hits\": {arena_hits}, \"misses\": {arena_misses}, \"hit_rate\": {arena_hit_rate:.4}}},"
    );
    // Batch accounting covers the whole measurement loop (all worker
    // counts); diagnostics only — never part of the telemetry sheets.
    let mean_batch = batched_events as f64 / batches.max(1) as f64;
    let hist: Vec<String> = batch_hist.iter().map(u64::to_string).collect();
    let _ = writeln!(
        json,
        "  \"event_batching\": {{\"batches\": {batches}, \"batched_events\": {batched_events}, \
         \"mean_batch\": {mean_batch:.2}, \"size_hist_log2\": [{}]}},",
        hist.join(", ")
    );
    // An unmeasurable quantity is reported as unmeasured, never as a bare
    // null a consumer could misread as "zero allocations".
    let _ = writeln!(
        json,
        "  \"allocs_per_trial\": {},",
        allocs_per_trial.map_or_else(
            || "{\"measured\": false}".to_string(),
            |a| format!("{{\"measured\": true, \"per_trial\": {a:.1}}}")
        ),
    );
    json.push_str("  \"series\": {");
    let gauges: Vec<String> = GaugeId::ALL
        .iter()
        .filter(|&&id| !series.series(id).is_empty())
        .map(|&id| format!("\"{}\": {}", id.name(), series.series(id).to_json()))
        .collect();
    json.push_str(&gauges.join(", "));
    json.push_str("},\n");
    let buckets: Vec<String> = SpanId::ALL
        .iter()
        .map(|&id| format!("\"{}\": {}", id.name(), profile.self_nanos[id as usize]))
        .collect();
    let _ = writeln!(
        json,
        "  \"profile\": {{\"total_self_nanos\": {}, \"busy_coverage\": {busy_coverage:.3}, \"self_nanos\": {{{}}}}},",
        profile.total_self_nanos(),
        buckets.join(", "),
    );
    json.push_str("  \"runs\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let busy: Vec<String> = m.busy_s.iter().map(|b| format!("{b:.3}")).collect();
        let waits: Vec<String> = m.merge_wait_s.iter().map(|b| format!("{b:.3}")).collect();
        let attempts: Vec<String> = m.steal_attempts.iter().map(u64::to_string).collect();
        let failures: Vec<String> = m.steal_failures.iter().map(u64::to_string).collect();
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"wall_s\": {:.3}, \"trials\": {}, \"trials_per_s\": {:.1}, \"events\": {}, \"events_per_s\": {:.0}, \"speedup_vs_serial\": {:.2}, \"identical_to_serial\": {}, \"worker_busy_s\": [{}], \"merge_wait_s\": [{}], \"steal_attempts\": [{}], \"steal_failures\": [{}], \"merge_high_water\": {}}}",
            m.threads,
            m.wall_s,
            m.trials,
            m.trials as f64 / m.wall_s,
            m.events,
            m.events as f64 / m.wall_s,
            serial_wall / m.wall_s,
            m.identical_to_serial,
            busy.join(", "),
            waits.join(", "),
            attempts.join(", "),
            failures.join(", "),
            m.merge_high_water,
        );
        json.push_str(if i + 1 < measurements.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if !quick {
        // The quick smoke run (CI) must not clobber the checked-in
        // full-workload artifact.
        std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    }
    println!("{json}");

    if measurements.iter().any(|m| !m.identical_to_serial) {
        eprintln!("ERROR: parallel aggregates diverged from the serial run");
        std::process::exit(1);
    }

    if intang_simcheck::enabled() {
        eprintln!("  simcheck: {total_violations} invariant violation(s) across all runs");
        if total_violations > 0 {
            eprintln!(
                "ERROR: simcheck reported invariant violations; minimal repro artifacts are in {}",
                intang_experiments::simcheck::artifact_dir().display()
            );
            std::process::exit(1);
        }
    }
}
