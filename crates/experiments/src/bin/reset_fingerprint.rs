//! Regenerates the paper artifact; see `intang_experiments::exps::reset_fingerprint`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::reset_fingerprint::run(&args));
}
