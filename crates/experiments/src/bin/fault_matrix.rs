//! Regenerates the fault-degradation matrix; see
//! `intang_experiments::exps::fault_matrix`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::fault_matrix::run(&args));
}
