//! Runs every table/figure harness in sequence (the EXPERIMENTS.md data).
use intang_experiments::args::CommonArgs;
use intang_experiments::exps;

fn main() {
    let args = CommonArgs::parse();
    for (name, f) in [
        ("table1", exps::table1::run as fn(&CommonArgs) -> String),
        ("table2", exps::table2::run),
        ("table3", exps::table3::run),
        ("table4", exps::table4::run),
        ("table5", exps::table5::run),
        ("table6", exps::table6::run),
        ("hypotheses", exps::hypotheses::run),
        ("figures", exps::figures::run),
        ("tor_vpn", exps::tor_vpn::run),
        ("reset_fingerprint", exps::reset_fingerprint::run),
        ("ablations", exps::ablations::run),
        ("arms_race", exps::arms_race::run),
        ("device_types", exps::device_types::run),
        ("convergence", exps::convergence::run),
        ("fault_matrix", exps::fault_matrix::run),
    ] {
        eprintln!(">>> running {name} ...");
        println!("{}", f(&args));
    }
}
