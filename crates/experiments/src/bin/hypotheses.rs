//! Regenerates the paper artifact; see `intang_experiments::exps::hypotheses`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::hypotheses::run(&args));
}
