//! Regenerates the paper artifact; see `intang_experiments::exps::figures`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::figures::run(&args));
}
