//! Regenerates the DESIGN.md ablations; see `intang_experiments::exps::ablations`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::ablations::run(&args));
}
