//! Regenerates the paper artifact; see `intang_experiments::exps::table6`.
fn main() {
    let args = intang_experiments::args::CommonArgs::parse();
    print!("{}", intang_experiments::exps::table6::run(&args));
}
