//! JSONL telemetry export for the experiment binaries.
//!
//! When a binary is run with `--telemetry out.jsonl` (or with
//! `INTANG_TELEMETRY=out.jsonl` in the environment) every sweep it
//! executes appends two kinds of records to the file:
//!
//! * one `metrics` record — the sweep's merged [`MetricsSheet`] snapshot
//!   (non-zero counters, histograms, per-strategy outcome grid),
//! * one `diagnosis` record per unsuccessful trial, carrying the trial's
//!   identity and its §5 failure vector, and
//! * one `series` record per gauge when gauge time-series sampling was
//!   enabled (`INTANG_SERIES=1`), carrying the sweep's merged series.
//!
//! Records are self-describing (`"record": "metrics" | "diagnosis" |
//! "series"`) and every record carries the writer's `schema_version`
//! ([`intang_telemetry::SCHEMA_VERSION`]) so a single file can interleave
//! sweeps from several experiments and still be parsed later.

use crate::args::CommonArgs;
use crate::runner::SweepRun;
use crate::trial::Outcome;
use intang_telemetry::json::{u64_array, JsonObject, JsonlWriter};
use intang_telemetry::metrics::STRATEGY_SLOTS;
use intang_telemetry::MetricsSheet;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::sync::{Mutex, OnceLock};

/// Paths already opened by this process. The first open of a path
/// truncates; later opens append, so a multi-experiment binary (`all`)
/// whose sub-experiments each build their own sink against the same
/// `--telemetry` path accumulates all their records instead of each
/// sub-experiment wiping out the previous one's output.
fn opened_paths() -> &'static Mutex<HashSet<String>> {
    static PATHS: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    PATHS.get_or_init(|| Mutex::new(HashSet::new()))
}

/// A JSONL telemetry sink shared by one binary invocation.
pub struct TelemetrySink {
    w: JsonlWriter<Box<dyn Write>>,
}

impl TelemetrySink {
    /// Open `path` for writing — truncating on the first open within this
    /// process, appending on subsequent opens of the same path.
    pub fn create(path: &str) -> io::Result<TelemetrySink> {
        let first = opened_paths().lock().unwrap().insert(path.to_string());
        let file = if first {
            File::create(path)?
        } else {
            OpenOptions::new().append(true).open(path)?
        };
        Ok(TelemetrySink::from_writer(Box::new(BufWriter::new(file))))
    }

    /// Wrap an arbitrary writer (tests use an in-memory buffer).
    pub fn from_writer(w: Box<dyn Write>) -> TelemetrySink {
        TelemetrySink { w: JsonlWriter::new(w) }
    }

    /// Sink for the parsed `--telemetry` / `INTANG_TELEMETRY` setting;
    /// `None` when telemetry is off. A path that cannot be opened is a
    /// hard error — silently dropping requested telemetry would be worse —
    /// but it is reported as a usage error (status 2), not a panic.
    pub fn from_args(args: &CommonArgs) -> Option<TelemetrySink> {
        args.telemetry.as_deref().map(|path| match TelemetrySink::create(path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("error: cannot open telemetry file {path:?}: {e}");
                eprintln!("hint: check that the parent directory exists and is writable,\n      or drop --telemetry / unset INTANG_TELEMETRY to disable telemetry");
                std::process::exit(2);
            }
        })
    }

    /// Record one finished sweep: its metrics snapshot, then one diagnosis
    /// per unsuccessful trial.
    pub fn record_sweep(&mut self, experiment: &str, sweep: &str, run: &SweepRun) -> io::Result<()> {
        let mut o = JsonObject::new();
        o.str("record", "metrics")
            .u64("schema_version", intang_telemetry::SCHEMA_VERSION)
            .str("experiment", experiment)
            .str("sweep", sweep)
            .u64("trials", run.trials)
            .u64("events", run.events)
            .raw("counters", &render_counters(&run.metrics))
            .raw("hists", &render_hists(&run.metrics))
            .raw("strategy_outcomes", &render_strategy_outcomes(&run.metrics));
        self.w.record(&o.finish())?;

        for d in &run.diagnoses {
            let outcome = match d.outcome {
                Outcome::Success => "success",
                Outcome::Failure1 => "failure1",
                Outcome::Failure2 => "failure2",
            };
            let mut o = JsonObject::new();
            o.str("record", "diagnosis")
                .u64("schema_version", intang_telemetry::SCHEMA_VERSION)
                .str("experiment", experiment)
                .str("sweep", sweep)
                .str("vp", &d.vp)
                .str("site", &d.site)
                .u64("trial", u64::from(d.trial))
                .u64("seed", d.seed)
                .str("outcome", outcome)
                .str("vector", d.vector.name())
                .u64("resets_seen", d.resets_seen);
            self.w.record(&o.finish())?;
        }

        if let Some(series) = &run.series {
            for id in intang_telemetry::GaugeId::ALL {
                let s = series.series(id);
                if s.is_empty() {
                    continue;
                }
                let mut o = JsonObject::new();
                o.str("record", "series")
                    .u64("schema_version", intang_telemetry::SCHEMA_VERSION)
                    .str("experiment", experiment)
                    .str("sweep", sweep)
                    .str("gauge", id.name())
                    .raw("series", &s.to_json());
                self.w.record(&o.finish())?;
            }
        }
        self.w.flush()
    }
}

fn render_counters(m: &MetricsSheet) -> String {
    let mut o = JsonObject::new();
    for (c, v) in m.nonzero_counters() {
        o.u64(c.name(), v);
    }
    o.finish()
}

fn render_hists(m: &MetricsSheet) -> String {
    let mut o = JsonObject::new();
    for (h, hist) in m.nonzero_hists() {
        let mut inner = JsonObject::new();
        inner
            .u64("count", hist.count)
            .u64("sum", hist.sum)
            .f64("mean", hist.mean())
            .raw("log2_buckets", &u64_array(&hist.buckets));
        o.raw(h.name(), &inner.finish());
    }
    o.finish()
}

/// The strategy × outcome grid, keyed by slot index, skipping all-zero
/// slots. Slot 20 is the adaptive engine; 0–19 are `StrategyId`s.
fn render_strategy_outcomes(m: &MetricsSheet) -> String {
    let mut o = JsonObject::new();
    for slot in 0..STRATEGY_SLOTS {
        let row = m.strategy_outcomes(slot);
        if row.iter().any(|&v| v > 0) {
            let mut inner = JsonObject::new();
            inner.u64("success", row[0]).u64("failure1", row[1]).u64("failure2", row[2]);
            o.raw(&slot.to_string(), &inner.finish());
        }
    }
    o.finish()
}
