//! Ablations of the design choices DESIGN.md calls out:
//!
//! * insertion redundancy (§3.4's ×3-with-20 ms-gaps) under link loss;
//! * the δ heuristic in TTL scoping (§7.1's δ = 2), swept 0..4;
//! * TTL-preference vs MD5-only insertion crafting, inside vs outside;
//! * the two-level cache's front LRU (hit counters with and without).

use crate::args::CommonArgs;
use crate::report::{pct, Table};
use crate::scenario::Scenario;
use crate::trial::{run_http_trial, Outcome, TrialSpec};
use intang_core::cache::TwoLevelCache;
use intang_core::StrategyKind;

fn success_rate(scenario: &Scenario, kind: StrategyKind, trials: u32, seed: u64, mutate: impl Fn(&mut TrialSpec<'_>)) -> f64 {
    let mut ok = 0u32;
    let mut n = 0u32;
    for (vi, vp) in scenario.vantage_points.iter().enumerate().take(4) {
        for (si, site) in scenario.websites.iter().enumerate().take(20) {
            for t in 0..trials {
                let s = seed ^ ((vi as u64) << 40) ^ ((si as u64) << 20) ^ u64::from(t);
                let mut spec = TrialSpec::new(vp, site, Some(kind), true, s);
                mutate(&mut spec);
                n += 1;
                if run_http_trial(&spec).outcome == Outcome::Success {
                    ok += 1;
                }
            }
        }
    }
    f64::from(ok) / f64::from(n)
}

fn redundancy_ablation(args: &CommonArgs) -> String {
    // Lossier-than-usual paths make the redundancy earn its keep.
    let mut scenario = Scenario::paper_inside(args.seed);
    for w in &mut scenario.websites {
        w.loss = 0.05; // 5% per-link loss
    }
    let trials = args.trials_or(6);
    let mut t = Table::new(
        "Ablation — insertion redundancy under 5% per-link loss (improved teardown)",
        &["Copies per insertion", "Success"],
    );
    for redundancy in [1u32, 2, 3, 4] {
        let r = success_rate(&scenario, StrategyKind::ImprovedTeardown, trials, args.seed, |spec| {
            spec.redundancy = redundancy;
            spec.route_change_prob = 0.0;
        });
        t.row(vec![redundancy.to_string(), pct(r)]);
    }
    t.render()
}

fn delta_ablation(args: &CommonArgs) -> String {
    let scenario = Scenario::paper_inside(args.seed ^ 0xd);
    let trials = args.trials_or(6);
    let mut t = Table::new(
        "Ablation — δ in TTL scoping (in-order overlap with TTL; paper uses δ=2)",
        &["delta", "Success", "note"],
    );
    for delta in [0u8, 1, 2, 3, 4] {
        let r = success_rate(
            &scenario,
            StrategyKind::InOrderOverlap(intang_core::Discrepancy::SmallTtl),
            trials,
            args.seed,
            |spec| {
                spec.route_change_prob = 0.10;
                spec.delta = delta;
            },
        );
        let note = match delta {
            0 => "insertions reach the server: junk accepted, requests wedged",
            1 => "still brushing server-side middleboxes",
            2 => "the paper's heuristic",
            _ => "safe but shrinking margin over the censor's position",
        };
        t.row(vec![delta.to_string(), pct(r), note.to_string()]);
    }
    t.render()
}

fn cache_ablation(_args: &CommonArgs) -> String {
    // Front-LRU effectiveness on a Zipf-ish access pattern.
    let mut with_front: TwoLevelCache<u32, u32> = TwoLevelCache::new(32);
    let mut tiny_front: TwoLevelCache<u32, u32> = TwoLevelCache::new(1);
    for i in 0..200u32 {
        with_front.put(i, i, 0, u64::MAX / 2);
        tiny_front.put(i, i, 0, u64::MAX / 2);
    }
    let mut x = 12345u64;
    for _ in 0..20_000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Zipf-ish: 80% of lookups hit 16 hot keys.
        let key = if x % 10 < 8 {
            (x >> 32) as u32 % 16
        } else {
            (x >> 32) as u32 % 200
        };
        with_front.get(&key, 1);
        tiny_front.get(&key, 1);
    }
    let mut t = Table::new(
        "Ablation — two-level cache front (20k Zipf lookups over 200 keys)",
        &["Front LRU", "front hits", "store hits", "front hit ratio"],
    );
    for (label, c) in [("32 entries", &with_front), ("1 entry", &tiny_front)] {
        let total = c.front_hits + c.back_hits;
        t.row(vec![
            label.to_string(),
            c.front_hits.to_string(),
            c.back_hits.to_string(),
            pct(c.front_hits as f64 / total as f64),
        ]);
    }
    t.render()
}

pub fn run(args: &CommonArgs) -> String {
    let mut out = String::new();
    out.push_str(&redundancy_ablation(args));
    out.push('\n');
    out.push_str(&delta_ablation(args));
    out.push('\n');
    out.push_str(&cache_ablation(args));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_front_matters() {
        let out = cache_ablation(&CommonArgs::parse_from(Vec::new()).unwrap());
        assert!(out.contains("32 entries"));
        // The 32-entry front absorbs most of the Zipf head; the 1-entry
        // front cannot.
        let lines: Vec<&str> = out.lines().collect();
        let big = lines.iter().find(|l| l.starts_with("32 entries")).unwrap();
        let small = lines.iter().find(|l| l.starts_with("1 entry")).unwrap();
        let ratio = |l: &str| -> f64 { l.split_whitespace().last().unwrap().trim_end_matches('%').parse::<f64>().unwrap() };
        assert!(ratio(big) > ratio(small) + 20.0, "{out}");
    }

    #[test]
    fn redundancy_helps_under_loss() {
        let args = CommonArgs::parse_from(vec!["--trials".to_string(), "3".to_string()]).unwrap();
        let out = redundancy_ablation(&args);
        let rate = |n: &str| -> f64 {
            out.lines()
                .find(|l| l.starts_with(n))
                .unwrap()
                .split_whitespace()
                .nth(1)
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap()
        };
        assert!(rate("3") >= rate("1"), "triple redundancy at least matches single: {out}");
    }
}
