//! Fault matrix: success-rate degradation under increasing fault intensity.
//!
//! The paper's numbers come from live paths whose noise it could not
//! control — bursty loss, route dynamics (§3.4), and a censor whose
//! injection behaviour varies by vantage point (the Table 2/Table 4
//! min–max spread). This harness makes that noise a controlled axis:
//! every trial derives a seeded [`intang_faults::FaultPlan`] and the
//! sweep is repeated at increasing intensities, so the output reads as
//! degradation curves — how fast each strategy's success rate decays as
//! the path and the censor get less cooperative, and how much of the
//! vantage-point spread the fault layer alone reproduces.
//!
//! Intensity 0.0 is the control row: it must match a faultless build
//! byte-for-byte (the plan derivation returns `None` without consuming
//! randomness).

use crate::args::CommonArgs;
use crate::report::{pct, Table};
use crate::runner::{min_max_avg, sweep_with_threads, worker_count, Aggregate, SweepConfig, SweepRun};
use crate::scenario::Scenario;
use crate::telemetry::TelemetrySink;
use intang_core::StrategyKind;
use intang_faults::FaultConfig;
use intang_telemetry::{Counter, FailureVector};

/// The fault-intensity axis (0.0 = control, byte-identical to no layer).
pub const INTENSITIES: [f64; 4] = [0.0, 0.25, 0.5, 1.0];

/// Strategies swept at each intensity: the no-evasion baseline, two fixed
/// strategies with distinct failure modes (teardown leans on resets
/// reaching the censor; resync/desync on insertions surviving the path),
/// and INTANG's adaptive mode.
pub fn rows() -> Vec<(&'static str, Option<StrategyKind>)> {
    vec![
        ("No strategy", Some(StrategyKind::NoStrategy)),
        ("Improved TCB Teardown", Some(StrategyKind::ImprovedTeardown)),
        ("TCB Creation + Resync/Desync", Some(StrategyKind::TcbCreationResyncDesync)),
        ("INTANG adaptive", None),
    ]
}

/// Sum of the counters the fault layer (and only the fault layer) drives.
fn fault_events(run: &SweepRun) -> u64 {
    [
        Counter::NetsimBurstLosses,
        Counter::NetsimReordered,
        Counter::NetsimDuplicated,
        Counter::NetsimMtuDropped,
        Counter::FaultRouteFlaps,
        Counter::GfwInjectionsSuppressed,
        Counter::GfwDeviceFlaps,
        Counter::GfwBlacklistJitterApplied,
        Counter::IntangReprotects,
        Counter::IntangRetriesAbandoned,
        Counter::IntangTtlReprobes,
    ]
    .iter()
    .map(|&c| run.metrics.counter(c))
    .sum()
}

pub fn run(args: &CommonArgs) -> String {
    let trials = args.trials_or(8);
    let scenario = if args.quick {
        Scenario::smoke(args.seed)
    } else {
        Scenario::paper_inside(args.seed)
    };
    let workers = worker_count();
    let mut sink = TelemetrySink::from_args(args);
    args.apply_observability();
    let cells = scenario.vantage_points.len() * scenario.websites.len();
    let total_cells = INTENSITIES.len() * rows().len() * cells;
    let progress = args
        .progress
        .then(|| crate::progress::Progress::start("fault_matrix", total_cells, workers));
    let mut profile = intang_telemetry::SpanSheet::new();
    let mut out = String::new();
    // success avg per (strategy row, intensity) for the closing summary.
    let mut curves: Vec<Vec<f64>> = vec![Vec::new(); rows().len()];

    for &intensity in &INTENSITIES {
        let mut t = Table::new(
            &format!(
                "Fault matrix @ intensity {intensity:.2} — {} vp x {} sites x {} trials",
                scenario.vantage_points.len(),
                scenario.websites.len(),
                trials
            ),
            &[
                "Strategy",
                "Success min",
                "Success max",
                "Success avg",
                "F1 avg",
                "F2 avg",
                "Fault events",
                "Unclassified",
            ],
        );
        for (row_idx, (label, kind)) in rows().into_iter().enumerate() {
            let mut cfg = SweepConfig::new(kind, true, trials, args.seed);
            cfg.faults = FaultConfig::at_intensity(intensity);
            cfg.progress = progress.clone();
            let run = sweep_with_threads(&scenario, &cfg, workers);
            profile.merge(&run.profile());
            if let Some(s) = sink.as_mut() {
                s.record_sweep("fault_matrix", &format!("intensity {intensity:.2}: {label}"), &run)
                    .expect("telemetry write");
            }
            let s = min_max_avg(&run.rows, Aggregate::success_rate);
            let f1 = min_max_avg(&run.rows, Aggregate::failure1_rate);
            let f2 = min_max_avg(&run.rows, Aggregate::failure2_rate);
            let unclassified = run.diagnoses.iter().filter(|d| d.vector == FailureVector::Unclassified).count();
            curves[row_idx].push(s.avg);
            t.row(vec![
                label.to_string(),
                pct(s.min),
                pct(s.max),
                pct(s.avg),
                pct(f1.avg),
                pct(f2.avg),
                fault_events(&run).to_string(),
                unclassified.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }

    // Degradation curves: success avg across the intensity axis, plus the
    // total drop from the control column — the headline number.
    let mut t = Table::new(
        "Success-rate degradation (avg across vantage points)",
        &["Strategy", "i=0.00", "i=0.25", "i=0.50", "i=1.00", "drop"],
    );
    for ((label, _), curve) in rows().into_iter().zip(&curves) {
        let drop = curve.first().copied().unwrap_or(0.0) - curve.last().copied().unwrap_or(0.0);
        let mut cells = vec![label.to_string()];
        cells.extend(curve.iter().map(|&v| pct(v)));
        cells.push(pct(drop));
        t.row(cells);
    }
    out.push_str(&t.render());
    args.write_profile_folded(&profile);
    out
}
