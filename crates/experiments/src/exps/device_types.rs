//! §2.1 / §8 — the two co-deployed device types, separated by behavior:
//! splitting an HTTP request into two TCP segments evades the type-1
//! per-packet scanner but not the type-2 reassembler ("only type-2 resets
//! are seen when we split a HTTP request into two TCP packets"), and only
//! type-2 devices run the 90-second blacklist with forged SYN/ACKs.
//!
//! §8 also reports days when one device type was down (CERNET Beijing saw
//! type-1 alone); the sweep below reproduces each deployment mix.

use crate::args::CommonArgs;
use crate::report::Table;
use intang_gfw::dpi::{Automaton, RuleSet};
use intang_gfw::tcb::CensorTcb;
use intang_gfw::{GfwConfig, GfwElement};
use intang_netsim::element::PassThrough;
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::{PacketBuilder, TcpFlags};
use intang_tcpstack::reasm::SegmentOverlapPolicy;
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 9);

/// Drive a whole vs split keyword request past a deployment mix; returns
/// (detected, type1 resets, type2 resets, blockpages) observed at the
/// client edge.
fn probe(cfg: GfwConfig, split: bool, seed: u64) -> (bool, usize, usize, usize) {
    let mut sim = Simulation::new(seed);
    let (tap, tap_handle) = crate::tap::RecorderTap::new("client-edge");
    sim.add_element(Box::new(tap));
    sim.add_link(Link::new(Duration::from_millis(1), 2));
    let (el, gfw) = GfwElement::new(cfg);
    sim.add_element(Box::new(el));
    sim.add_link(Link::new(Duration::from_millis(1), 2));
    sim.add_element(Box::new(PassThrough::new("server-edge")));

    let mut t = 0u64;
    let mut send = |sim: &mut Simulation, from_client: bool, wire: intang_packet::Wire| {
        t += 5_000;
        let (e, d) = if from_client {
            (0, Direction::ToServer)
        } else {
            (2, Direction::ToClient)
        };
        sim.inject_at(e, d, wire, Instant(t));
        sim.run_to_quiescence(10_000);
    };
    let c2s = || PacketBuilder::tcp(CLIENT, SERVER, 40_000, 80);
    send(&mut sim, true, c2s().seq(1000).flags(TcpFlags::SYN).build());
    send(
        &mut sim,
        false,
        PacketBuilder::tcp(SERVER, CLIENT, 80, 40_000)
            .seq(9000)
            .ack(1001)
            .flags(TcpFlags::SYN_ACK)
            .build(),
    );
    send(&mut sim, true, c2s().seq(1001).ack(9001).flags(TcpFlags::ACK).build());
    let req = b"GET /ultrasurf HTTP/1.1\r\n\r\n";
    if split {
        let cut = 8;
        send(
            &mut sim,
            true,
            c2s().seq(1001).ack(9001).flags(TcpFlags::PSH_ACK).payload(&req[..cut]).build(),
        );
        send(
            &mut sim,
            true,
            c2s()
                .seq(1001 + cut as u32)
                .ack(9001)
                .flags(TcpFlags::PSH_ACK)
                .payload(&req[cut..])
                .build(),
        );
    } else {
        send(
            &mut sim,
            true,
            c2s().seq(1001).ack(9001).flags(TcpFlags::PSH_ACK).payload(req).build(),
        );
    }
    sim.run_to_quiescence(10_000);

    let mut t1 = 0;
    let mut t2 = 0;
    let mut blockpages = 0;
    for c in tap_handle.captures() {
        if c.dir != Direction::ToClient {
            continue;
        }
        if let Some(sig) = intang_core::measure::classify_wire(&c.wire) {
            match sig {
                intang_core::measure::ResetSignature::Type1Rst => t1 += 1,
                intang_core::measure::ResetSignature::Type2RstAck => t2 += 1,
            }
        }
        if let Some(h) = c.wire.headers() {
            if h.tcp().is_some() {
                let l4 = &c.wire[usize::from(h.ip_payload_start)..usize::from(h.ip_payload_end)];
                let tcp = intang_packet::TcpPacket::new_unchecked(l4);
                if tcp.payload().starts_with(b"HTTP/1.1 403") {
                    blockpages += 1;
                }
            }
        }
    }
    (gfw.detected_any(), t1, t2, blockpages)
}

/// The evolved model with one device generation switched off, as the
/// builtin rows have always run it.
fn mix(type1: bool, type2: bool) -> GfwConfig {
    let mut cfg = GfwConfig::evolved().deterministic();
    cfg.type1 = type1;
    cfg.type2 = type2;
    cfg
}

pub fn run(args: &CommonArgs) -> String {
    let mut t = Table::new(
        "§2.1/§8 — device-type differentiation (whole vs split keyword request)",
        &[
            "Deployment",
            "Whole request",
            "Split request",
            "type-1 RSTs (split)",
            "type-2 RST/ACKs (split)",
            "blockpages (whole)",
        ],
    );
    let rows: Vec<(&str, GfwConfig)> = vec![
        ("type-1 only (CERNET days)", mix(true, false)),
        ("type-2 only", mix(false, true)),
        ("both co-deployed (normal)", mix(true, true)),
        // Data-driven contrast row: the Turkmenistan profile (Nourin et
        // al.) is a type-1-only deployment that additionally answers the
        // forbidden request with a spoofed 403 blockpage.
        (
            "turkmenistan profile",
            intang_gfw::CensorProfile::turkmenistan()
                .compile()
                .expect("builtin profile compiles")
                .deterministic(),
        ),
    ];
    for (label, cfg) in rows {
        let (whole, _, _, bp) = probe(cfg.clone(), false, args.seed);
        let (split, st1, st2, _) = probe(cfg, true, args.seed ^ 1);
        t.row(vec![
            label.to_string(),
            if whole { "DETECTED".into() } else { "evaded".into() },
            if split { "DETECTED".into() } else { "evaded".into() },
            st1.to_string(),
            st2.to_string(),
            bp.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str("\nSplitting the request blinds the per-packet type-1 scanner; only\ntype-2 reassembly catches it — hence the paper's observation that\nsplit requests draw exclusively type-2 resets. The turkmenistan\nprofile row shows a different censor compiled onto the same machinery:\ntype-1 resets plus an in-band spoofed 403 blockpage.\n");
    out
}

/// The unit-level statement of the same fact (used by the test below and
/// referenced from EXPERIMENTS.md).
pub fn type1_blind_to_split() -> bool {
    let a = Automaton::build(&RuleSet::paper_default());
    let mut tcb = CensorTcb::from_syn((CLIENT, 40_000), (SERVER, 80), 1000, SegmentOverlapPolicy::FirstWins);
    let base = tcb.stream_base;
    let kw = b"GET /ultrasurf HTTP/1.1\r\n\r\n";
    let h1 = tcb.feed_client_data(&a, base, &kw[..8], true, false);
    let h2 = tcb.feed_client_data(&a, base.wrapping_add(8), &kw[8..], true, false);
    h1.is_empty() && h2.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_requests_draw_only_type2_resets() {
        let out = run(&CommonArgs::parse_from(Vec::new()).unwrap());
        let line = |p: &str| out.lines().find(|l| l.starts_with(p)).unwrap().to_string();
        let t1only = line("type-1 only");
        assert!(t1only.contains("DETECTED"), "{t1only}");
        assert!(t1only.matches("evaded").count() == 1, "split evades type-1: {t1only}");
        let t2only = line("type-2 only");
        assert_eq!(t2only.matches("DETECTED").count(), 2, "type-2 catches both: {t2only}");
        // Co-deployed: the split request is still caught (by the type-2
        // reassembler; the type-1 scanner contributed nothing).
        let both = line("both co-deployed");
        assert!(both.contains("DETECTED"));
        assert!(type1_blind_to_split());
    }

    #[test]
    fn turkmenistan_profile_blocks_with_a_blockpage() {
        let out = run(&CommonArgs::parse_from(Vec::new()).unwrap());
        let row = out
            .lines()
            .find(|l| l.starts_with("turkmenistan profile"))
            .unwrap_or_else(|| panic!("turkmenistan row missing:\n{out}"));
        assert!(row.contains("DETECTED"), "whole request is caught: {row}");
        assert_eq!(row.matches("evaded").count(), 1, "split evades the type-1-only scanner: {row}");
        let cells: Vec<&str> = row.split_whitespace().collect();
        let blockpages: usize = cells.last().unwrap().parse().unwrap();
        assert!(blockpages >= 1, "the spoofed 403 must land at the client edge: {row}");
        // No type-2 volley exists in this deployment.
        let builtin_rows = out.lines().filter(|l| l.starts_with("type-2")).count();
        assert!(builtin_rows > 0, "builtin rows still present");
    }
}
