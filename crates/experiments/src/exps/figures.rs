//! Figures 1–4: the threat model and INTANG component diagrams (static),
//! and the two combined-strategy packet sequences (Fig. 3 / Fig. 4),
//! regenerated from *actual simulated runs* with tracing enabled.

use crate::args::CommonArgs;
use crate::scenario::Scenario;
use crate::trial::{build_http_sim, TrialSpec};
use intang_core::StrategyKind;
use intang_netsim::trace::TraceKind;
use intang_netsim::{Direction, Instant};

const FIG1: &str = r#"
Figure 1 — Threat model
  [client] --- [client-side middleboxes] --- (GFW tap: reads + injects) --- [server-side middleboxes] --- [server]
  The censor is on-path: it copies packets and injects; in-path middleboxes may drop or rewrite.
"#;

const FIG2: &str = r#"
Figure 2 — INTANG components (crate: intang-core)
  main thread   : interception shim (engine.rs) -> strategy callbacks (strategies.rs)
                  -> insertion crafting (insertion.rs) -> raw injection
  caching thread: two-level cache (cache.rs: LRU front + TTL store)
                  + per-destination strategy history (select.rs)
  DNS thread    : UDP->TCP forwarder to a clean resolver (dns_forwarder.rs)
  measurement   : tcptraceroute-style hop estimation (ttl.rs), reset
                  classification (measure.rs)
"#;

/// Run one combined-strategy evasion with tracing on; render the packet
/// sequence as seen at the censor and at the shim.
fn sequence_of(kind: StrategyKind, seed: u64) -> String {
    let scenario = Scenario::smoke(seed);
    let mut site = scenario.websites[0].clone();
    site.old_device = true; // both generations, the combined strategies' target
    site.evolved_device = true;
    site.server_seqfw = false;
    site.path_drops_noflag = false;
    site.loss = 0.0;
    let mut spec = TrialSpec::new(&scenario.vantage_points[0], &site, Some(kind), true, seed);
    spec.route_change_prob = 0.0;
    spec.redundancy = 1; // one copy per insertion keeps the diagram readable
    let (mut sim, parts) = build_http_sim(&spec);
    sim.trace.enable();
    sim.run_until(Instant(25_000_000));

    let mut out = String::new();
    out.push_str(&format!(
        "strategy={:?}  outcome: response={} detections={}\n",
        kind,
        parts.report.borrow().response.is_some(),
        parts.gfw_handles.iter().map(|h| h.detections().len()).sum::<usize>(),
    ));
    out.push_str("  time          actor   dir  packet\n");
    // Trace records carry interned name ids; resolve the three actors once.
    let gfw = sim.trace.lookup("GFW");
    let intang = sim.trace.lookup("INTANG");
    let server = sim.trace.lookup("server");
    for e in sim.trace.events() {
        // Show what the censor observes plus what INTANG emits.
        let (show, actor) = match &e.point {
            intang_netsim::trace::TracePoint::Element { name, .. } if Some(*name) == gfw && e.kind == TraceKind::Arrive => (true, "GFW"),
            intang_netsim::trace::TracePoint::Element { name, .. }
                if Some(*name) == intang && e.kind == TraceKind::Emit && e.dir == Direction::ToServer =>
            {
                (true, "INTANG")
            }
            intang_netsim::trace::TracePoint::Element { name, .. } if Some(*name) == server && e.kind == TraceKind::Emit => {
                (true, "server")
            }
            _ => (false, ""),
        };
        if show && !e.summary.contains("ICMP") && !e.summary.contains(":61") {
            out.push_str(&format!("  {:>11}  {:<6} {}  {}\n", format!("{}", e.at), actor, e.dir, e.summary));
        }
    }
    out
}

pub fn run(args: &CommonArgs) -> String {
    let mut out = String::new();
    out.push_str(FIG1);
    out.push_str(FIG2);
    out.push_str("\nFigure 3 — Combined: TCB Creation + Resync/Desync (simulated run)\n");
    out.push_str(&sequence_of(StrategyKind::TcbCreationResyncDesync, args.seed));
    out.push_str("\nFigure 4 — Combined: TCB Teardown + TCB Reversal (simulated run)\n");
    out.push_str(&sequence_of(StrategyKind::TeardownTcbReversal, args.seed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_render_and_evade() {
        let out = run(&CommonArgs::parse_from(Vec::new()).unwrap());
        assert!(out.contains("Figure 3"));
        assert!(out.contains("Figure 4"));
        // Both simulated runs must evade: response received, no detections.
        let evasions = out.matches("response=true detections=0").count();
        assert_eq!(evasions, 2, "{out}");
        // The Fig. 3 sequence shows two fake SYNs around the handshake.
        assert!(out.contains("INTANG"));
        assert!(out.contains("GFW"));
    }
}
