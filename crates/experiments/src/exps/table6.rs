//! Table 6: TCP DNS censorship evasion via INTANG's forwarder, per
//! resolver, with and without the Tianjin vantage point.

use crate::args::CommonArgs;
use crate::report::{pct, Table};
use crate::scenario::VantagePoint;
use crate::trial_dns::{run_dns_trial, DnsOutcome, DnsTrialSpec, DYN1, DYN2};

/// The engaged-NAT probability on the Tianjin home path (the paper leaves
/// the Tianjin anomaly unexplained; see EXPERIMENTS.md).
pub const TIANJIN_NAT_PROB: f64 = 0.65;

pub struct Table6Row {
    pub resolver_name: &'static str,
    pub success_except_tj: f64,
    pub success_all: f64,
    pub tj_success: f64,
}

pub fn run_rows(trials: u32, seed: u64) -> Vec<Table6Row> {
    let vps = VantagePoint::inside_china();
    [("Dyn 1", DYN1), ("Dyn 2", DYN2)]
        .into_iter()
        .enumerate()
        .map(|(ri, (resolver_name, resolver))| {
            let mut per_vp = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = vps
                    .iter()
                    .enumerate()
                    .map(|(vi, vp)| {
                        scope.spawn(move || {
                            let nat_prob = if vp.name == "unicom-tj" { TIANJIN_NAT_PROB } else { 0.0 };
                            let mut ok = 0u32;
                            for t in 0..trials {
                                let s = seed ^ ((ri as u64) << 48) ^ ((vi as u64) << 32) ^ u64::from(t);
                                let spec = DnsTrialSpec {
                                    vp,
                                    resolver,
                                    use_intang: true,
                                    seed: s,
                                    nat_prob,
                                };
                                if run_dns_trial(&spec) == DnsOutcome::Resolved {
                                    ok += 1;
                                }
                            }
                            (vp.name, ok)
                        })
                    })
                    .collect();
                for h in handles {
                    per_vp.push(h.join().expect("dns sweep thread"));
                }
            });
            let total: u32 = per_vp.iter().map(|(_, ok)| ok).sum();
            let tj_ok = per_vp.iter().find(|(n, _)| *n == "unicom-tj").map(|(_, ok)| *ok).unwrap_or(0);
            let n_all = trials * vps.len() as u32;
            let n_except = trials * (vps.len() as u32 - 1);
            Table6Row {
                resolver_name,
                success_except_tj: f64::from(total - tj_ok) / f64::from(n_except),
                success_all: f64::from(total) / f64::from(n_all),
                tj_success: f64::from(tj_ok) / f64::from(trials),
            }
        })
        .collect()
}

pub fn run(args: &CommonArgs) -> String {
    let trials = args.trials_or(30);
    // Paper: Dyn1 98.6 / 92.7, Dyn2 99.6 / 93.1; Tianjin alone 38% and 24%.
    let paper = [(0.986, 0.927), (0.996, 0.931)];
    let mut t = Table::new(
        &format!(
            "Table 6 — TCP DNS evasion, {} queries of a censored domain per vantage point (paper in parentheses)",
            trials
        ),
        &["DNS resolver", "IP", "except Tianjin", "All", "Tianjin alone"],
    );
    for (row, (p_ex, p_all)) in run_rows(trials, args.seed).into_iter().zip(paper) {
        t.row(vec![
            row.resolver_name.to_string(),
            if row.resolver_name == "Dyn 1" {
                DYN1.to_string()
            } else {
                DYN2.to_string()
            },
            format!("{} ({})", pct(row.success_except_tj), pct(p_ex)),
            format!("{} ({})", pct(row.success_all), pct(p_all)),
            pct(row.tj_success),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let rows = run_rows(6, 321);
        for r in &rows {
            assert!(
                r.success_except_tj > 0.9,
                "{}: non-Tianjin success {}",
                r.resolver_name,
                r.success_except_tj
            );
            assert!(
                r.tj_success < 0.7,
                "{}: Tianjin is the outlier, got {}",
                r.resolver_name,
                r.tj_success
            );
            assert!(r.success_all < r.success_except_tj + 1e-9);
        }
    }
}
