//! Table 1: effectiveness of the *existing* evasion strategies, with and
//! without the sensitive keyword, from 11 vantage points × 77 websites.

use crate::args::CommonArgs;
use crate::report::{pct, Table};
use crate::runner::{overall, sweep_with_threads, worker_count, SweepConfig};
use crate::scenario::Scenario;
use crate::telemetry::TelemetrySink;
use intang_core::{Discrepancy, StrategyKind};

/// (label, strategy, paper's w/-keyword Success/F1/F2, paper's w/o-keyword
/// Success/F1) — the reference values from Table 1.
pub fn rows() -> Vec<(&'static str, StrategyKind, [f64; 3], [f64; 2])> {
    use Discrepancy::*;
    use StrategyKind::*;
    vec![
        ("No Strategy", NoStrategy, [0.028, 0.004, 0.968], [0.989, 0.011]),
        (
            "TCB creation SYN / TTL",
            TcbCreationSyn(SmallTtl),
            [0.069, 0.042, 0.889],
            [0.953, 0.047],
        ),
        (
            "TCB creation SYN / bad checksum",
            TcbCreationSyn(BadChecksum),
            [0.062, 0.051, 0.887],
            [0.935, 0.065],
        ),
        (
            "Reassembly OOO / IP fragments",
            OutOfOrderIpFrag,
            [0.016, 0.548, 0.436],
            [0.451, 0.549],
        ),
        (
            "Reassembly OOO / TCP segments",
            OutOfOrderTcpSeg,
            [0.308, 0.065, 0.626],
            [0.928, 0.072],
        ),
        (
            "Reassembly in-order / TTL",
            InOrderOverlap(SmallTtl),
            [0.906, 0.057, 0.037],
            [0.951, 0.049],
        ),
        (
            "Reassembly in-order / bad ACK",
            InOrderOverlap(BadAck),
            [0.831, 0.075, 0.095],
            [0.935, 0.065],
        ),
        (
            "Reassembly in-order / bad checksum",
            InOrderOverlap(BadChecksum),
            [0.872, 0.019, 0.108],
            [0.984, 0.016],
        ),
        (
            "Reassembly in-order / no TCP flag",
            InOrderOverlap(NoFlag),
            [0.483, 0.033, 0.484],
            [0.971, 0.029],
        ),
        (
            "TCB teardown RST / TTL",
            TeardownRst(SmallTtl),
            [0.732, 0.032, 0.236],
            [0.947, 0.053],
        ),
        (
            "TCB teardown RST / bad checksum",
            TeardownRst(BadChecksum),
            [0.631, 0.076, 0.293],
            [0.895, 0.105],
        ),
        (
            "TCB teardown RST-ACK / TTL",
            TeardownRstAck(SmallTtl),
            [0.731, 0.032, 0.237],
            [0.971, 0.029],
        ),
        (
            "TCB teardown RST-ACK / bad checksum",
            TeardownRstAck(BadChecksum),
            [0.689, 0.019, 0.292],
            [0.982, 0.018],
        ),
        (
            "TCB teardown FIN / TTL",
            TeardownFin(SmallTtl),
            [0.111, 0.010, 0.879],
            [0.994, 0.006],
        ),
        (
            "TCB teardown FIN / bad checksum",
            TeardownFin(BadChecksum),
            [0.084, 0.008, 0.907],
            [0.990, 0.010],
        ),
    ]
}

pub fn run(args: &CommonArgs) -> String {
    let scenario = args.apply_censor_profile(if args.quick {
        Scenario::smoke(args.seed)
    } else {
        Scenario::paper_inside(args.seed)
    });
    let trials = args.trials_or(8);
    let mut t = Table::new(
        &format!(
            "Table 1 — existing strategies, {} vantage points x {} websites x {} trials (paper values in parentheses)",
            scenario.vantage_points.len(),
            scenario.websites.len(),
            trials
        ),
        &[
            "Strategy",
            "Success",
            "Failure 1",
            "Failure 2",
            "Success w/o kw",
            "Failure 1 w/o kw",
        ],
    );
    let mut sink = TelemetrySink::from_args(args);
    args.apply_observability();
    let workers = worker_count();
    let cells = scenario.vantage_points.len() * scenario.websites.len();
    let progress = args
        .progress
        .then(|| crate::progress::Progress::start("table1", rows().len() * 2 * cells, workers));
    let mut profile = intang_telemetry::SpanSheet::new();
    for (label, kind, paper_kw, paper_nokw) in rows() {
        let mut kw_cfg = SweepConfig::new(Some(kind), true, trials, args.seed);
        kw_cfg.progress = progress.clone();
        let kw_run = sweep_with_threads(&scenario, &kw_cfg, workers);
        let mut nk_cfg = SweepConfig::new(Some(kind), false, trials, args.seed ^ 0x5a5a);
        nk_cfg.progress = progress.clone();
        let nk_run = sweep_with_threads(&scenario, &nk_cfg, workers);
        profile.merge(&kw_run.profile());
        profile.merge(&nk_run.profile());
        if let Some(s) = sink.as_mut() {
            s.record_sweep("table1", &format!("{label} (keyword)"), &kw_run)
                .expect("telemetry write");
            s.record_sweep("table1", &format!("{label} (no keyword)"), &nk_run)
                .expect("telemetry write");
        }
        let kw = overall(&kw_run.rows);
        let nk = overall(&nk_run.rows);
        t.row(vec![
            label.to_string(),
            format!("{} ({})", pct(kw.success_rate()), pct(paper_kw[0])),
            format!("{} ({})", pct(kw.failure1_rate()), pct(paper_kw[1])),
            format!("{} ({})", pct(kw.failure2_rate()), pct(paper_kw[2])),
            format!("{} ({})", pct(nk.success_rate()), pct(paper_nokw[0])),
            format!("{} ({})", pct(nk.failure1_rate()), pct(paper_nokw[1])),
        ]);
    }
    args.write_profile_folded(&profile);
    t.render()
}
