//! §7.3 — Tor bridge blocking / rescue and the OpenVPN regimes.

use crate::args::CommonArgs;
use crate::report::Table;
use crate::scenario::VantagePoint;
use crate::trial_tor::{run_tor_trial, run_vpn_trial, TorOutcome, TorTrialSpec, VpnOutcome, VpnTrialSpec};

pub fn run(args: &CommonArgs) -> String {
    let trials = args.trials_or(5);
    let vps = VantagePoint::inside_china();
    let mut t = Table::new(
        &format!(
            "§7.3 Tor — {} sessions per cell (paper: 4 northern vantage points unfiltered; others probed+IP-blocked; INTANG rescues 100%)",
            trials
        ),
        &["Vantage point", "City", "Tor-filtered path", "Plain Tor", "Tor + INTANG"],
    );
    let mut plain_blocked = 0;
    let mut intang_ok = 0;
    let mut filtered_cells = 0;
    for (vi, vp) in vps.iter().enumerate() {
        let mut plain = (0, 0, 0); // working, blocked, disrupted
        let mut protected = (0, 0, 0);
        for tr in 0..trials {
            let seed = args.seed ^ ((vi as u64) << 32) ^ u64::from(tr);
            let (o, _) = run_tor_trial(&TorTrialSpec {
                vp,
                use_intang: false,
                seed,
                cells: 3,
            });
            match o {
                TorOutcome::Working => plain.0 += 1,
                TorOutcome::IpBlocked => plain.1 += 1,
                TorOutcome::Disrupted => plain.2 += 1,
            }
            let (o, _) = run_tor_trial(&TorTrialSpec {
                vp,
                use_intang: true,
                seed: seed ^ 0x99,
                cells: 3,
            });
            match o {
                TorOutcome::Working => protected.0 += 1,
                TorOutcome::IpBlocked => protected.1 += 1,
                TorOutcome::Disrupted => protected.2 += 1,
            }
        }
        if vp.tor_filtered {
            filtered_cells += 1;
            plain_blocked += u32::from(plain.1 > 0);
            intang_ok += u32::from(protected.0 == trials);
        }
        t.row(vec![
            vp.name.to_string(),
            vp.city.to_string(),
            if vp.tor_filtered { "yes".into() } else { "no".into() },
            format!("{}W/{}B/{}D", plain.0, plain.1, plain.2),
            format!("{}W/{}B/{}D", protected.0, protected.1, protected.2),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nFiltered paths: {}/{} saw their bridge IP-blocked without INTANG; {}/{} ran clean with INTANG.\n",
        plain_blocked, filtered_cells, intang_ok, filtered_cells
    ));

    // VPN regimes.
    let mut tv = Table::new(
        "§7.3 VPN — OpenVPN-over-TCP under both censor regimes",
        &["Regime", "Plain OpenVPN", "OpenVPN + INTANG"],
    );
    let vp = &vps[0];
    let lab = |o: VpnOutcome| match o {
        VpnOutcome::TunnelUp => "tunnel up",
        VpnOutcome::ResetDuringHandshake => "RESET during handshake",
        VpnOutcome::Failed => "failed",
    };
    let dpi_plain = run_vpn_trial(&VpnTrialSpec {
        vp,
        vpn_dpi: true,
        use_intang: false,
        seed: args.seed,
    });
    let dpi_prot = run_vpn_trial(&VpnTrialSpec {
        vp,
        vpn_dpi: true,
        use_intang: true,
        seed: args.seed ^ 1,
    });
    tv.row(vec!["Nov 2016 (DPI resets on)".into(), lab(dpi_plain).into(), lab(dpi_prot).into()]);
    let off_plain = run_vpn_trial(&VpnTrialSpec {
        vp,
        vpn_dpi: false,
        use_intang: false,
        seed: args.seed ^ 2,
    });
    let off_prot = run_vpn_trial(&VpnTrialSpec {
        vp,
        vpn_dpi: false,
        use_intang: true,
        seed: args.seed ^ 3,
    });
    tv.row(vec![
        "2017 replay (DPI resets off)".into(),
        lab(off_plain).into(),
        lab(off_prot).into(),
    ]);
    out.push('\n');
    out.push_str(&tv.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tor_geography_and_rescue_shape() {
        let args = CommonArgs::parse_from(vec!["--trials".to_string(), "2".to_string()]).unwrap();
        let out = run(&args);
        // Unfiltered northern points run plain Tor fine.
        for name in ["aliyun-bj", "aliyun-qd", "qcloud-bj", "qcloud-zjk"] {
            let line = out.lines().find(|l| l.starts_with(name)).unwrap();
            assert!(line.contains("no"), "{line}");
            assert!(line.contains("2W/0B/0D"), "plain Tor works from {name}: {line}");
        }
        // INTANG rescues (nearly) every filtered path; QCloud's occasional
        // RST-dropping middlebox (Table 2) can eat a whole insertion volley.
        let clean: u32 = out
            .lines()
            .find(|l| l.contains("ran clean with INTANG"))
            .and_then(|l| l.split("; ").nth(1))
            .and_then(|s| s.split('/').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(clean >= 6, "{out}");
        // VPN: DPI regime resets plain, INTANG keeps it up; off-regime both up.
        assert!(out.contains("RESET during handshake"));
        let vpn_up = out.matches("tunnel up").count();
        assert_eq!(vpn_up, 3, "{out}");
    }
}
