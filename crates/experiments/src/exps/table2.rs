//! Table 2: client-side middlebox behaviors, reproduced by probing each
//! vantage-point profile with the five packet types the paper lists and
//! classifying what reaches a controlled server.

use crate::args::CommonArgs;
use crate::report::Table;
use crate::tap::RecorderTap;
use intang_middlebox::{ClientSideProfile, FieldFilter, FragmentHandler};
use intang_netsim::element::PassThrough;
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::{frag, Ipv4Packet, PacketBuilder, TcpFlags, Wire};
use std::net::Ipv4Addr;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    IpFragments,
    WrongChecksum,
    NoFlag,
    Rst,
    Fin,
}

impl ProbeKind {
    pub fn all() -> [ProbeKind; 5] {
        [
            ProbeKind::IpFragments,
            ProbeKind::WrongChecksum,
            ProbeKind::NoFlag,
            ProbeKind::Rst,
            ProbeKind::Fin,
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            ProbeKind::IpFragments => "IP fragments",
            ProbeKind::WrongChecksum => "Wrong TCP checksum",
            ProbeKind::NoFlag => "No TCP flag",
            ProbeKind::Rst => "RST packets",
            ProbeKind::Fin => "FIN packets",
        }
    }
}

/// Classified behavior, with Table 2's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    Pass,
    Dropped,
    SometimesDropped,
    Reassembled,
}

impl Behavior {
    pub fn label(self) -> &'static str {
        match self {
            Behavior::Pass => "Pass",
            Behavior::Dropped => "Discarded",
            Behavior::SometimesDropped => "Sometimes dropped",
            Behavior::Reassembled => "Reassembled",
        }
    }
}

fn probe_wires(kind: ProbeKind, i: u16) -> Vec<Wire> {
    let c = Ipv4Addr::new(10, 0, 0, 1);
    let s = Ipv4Addr::new(203, 0, 113, 80);
    let base = PacketBuilder::tcp(c, s, 40_000 + i, 80).seq(1000).ack(2000);
    match kind {
        ProbeKind::IpFragments => {
            let whole = base.flags(TcpFlags::PSH_ACK).payload(&[0x55; 64]).ident(100 + i).build();
            frag::fragment_at(&whole, &[32])
        }
        ProbeKind::WrongChecksum => vec![base.flags(TcpFlags::PSH_ACK).payload(b"probe").bad_checksum().build()],
        ProbeKind::NoFlag => vec![base.flags(TcpFlags::NONE).payload(b"probe").build()],
        ProbeKind::Rst => vec![base.flags(TcpFlags::RST).build()],
        ProbeKind::Fin => vec![base.flags(TcpFlags::FIN).build()],
    }
}

/// Send `repeats` probes of `kind` through `profile`'s middlebox chain and
/// classify what arrives.
pub fn probe_profile(profile: ClientSideProfile, kind: ProbeKind, repeats: u16, seed: u64) -> Behavior {
    let mut sim = Simulation::new(seed);
    sim.add_element(Box::new(PassThrough::new("client")));
    sim.add_link(Link::new(Duration::from_micros(100), 0));
    sim.add_element(Box::new(FragmentHandler::new(profile.label(), profile.fragment_mode())));
    sim.add_link(Link::new(Duration::from_micros(100), 0));
    sim.add_element(Box::new(FieldFilter::new(profile.label(), profile.filter_spec())));
    sim.add_link(Link::new(Duration::from_micros(100), 0));
    let (tap, handle) = RecorderTap::new("server-side");
    sim.add_element(Box::new(tap));

    let mut sent_groups = 0u32;
    for i in 0..repeats {
        for w in probe_wires(kind, i) {
            sim.inject_at(0, Direction::ToServer, w, Instant(u64::from(i) * 10_000));
        }
        sent_groups += 1;
    }
    sim.run_to_quiescence(100_000);

    let caps = handle.captures();
    if kind == ProbeKind::IpFragments {
        let whole = caps
            .iter()
            .filter(|c| Ipv4Packet::new_checked(&c.wire[..]).map(|p| !p.is_fragment()).unwrap_or(false))
            .count() as u32;
        let frags = caps.len() as u32 - whole;
        if whole >= sent_groups * 9 / 10 {
            return Behavior::Reassembled;
        }
        if frags == 0 && whole == 0 {
            return Behavior::Dropped;
        }
        return Behavior::Pass;
    }
    let arrived = caps.len() as u32;
    let rate = f64::from(arrived) / f64::from(sent_groups);
    if rate > 0.95 {
        Behavior::Pass
    } else if rate < 0.05 {
        Behavior::Dropped
    } else {
        Behavior::SometimesDropped
    }
}

pub fn run(args: &CommonArgs) -> String {
    let repeats = args.trials_or(40) as u16;
    let mut t = Table::new(
        &format!("Table 2 — client-side middlebox behaviors ({repeats} probes per cell)"),
        &["Packet Type", "Aliyun(6/11)", "QCloud(3/11)", "Unicom SJZ(1/11)", "Unicom TJ(1/11)"],
    );
    for kind in ProbeKind::all() {
        let mut cells = vec![kind.label().to_string()];
        for profile in ClientSideProfile::all_paper_profiles() {
            cells.push(probe_profile(profile, kind, repeats, args.seed).label().to_string());
        }
        t.row(cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table2_exactly() {
        use Behavior::*;
        use ClientSideProfile::*;
        use ProbeKind::*;
        let expect: [(ProbeKind, [Behavior; 4]); 5] = [
            (IpFragments, [Dropped, Reassembled, Reassembled, Reassembled]),
            (WrongChecksum, [Pass, Pass, Pass, Dropped]),
            (NoFlag, [Pass, Pass, Pass, Dropped]),
            (Rst, [Pass, SometimesDropped, Pass, Pass]),
            (Fin, [SometimesDropped, Pass, Dropped, Dropped]),
        ];
        let profiles = [Aliyun, QCloud, UnicomShijiazhuang, UnicomTianjin];
        for (kind, row) in expect {
            for (profile, want) in profiles.iter().zip(row) {
                let got = probe_profile(*profile, kind, 60, 99);
                assert_eq!(got, want, "{kind:?} via {profile:?}");
            }
        }
    }
}
