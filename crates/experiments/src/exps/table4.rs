//! Table 4: the improved/new strategies plus INTANG's adaptive mode,
//! inside China (11 vp × 77 sites) and outside China (4 vp × 33 sites),
//! reported as min/max/avg across vantage points.

use crate::args::CommonArgs;
use crate::report::{pct, Table};
use crate::runner::{min_max_avg, sweep_with_threads, worker_count, Aggregate, SweepConfig};
use crate::scenario::Scenario;
use crate::telemetry::TelemetrySink;
use intang_core::StrategyKind;

/// (label, strategy or None=adaptive, paper's inside avg S/F1/F2,
/// paper's outside avg S/F1/F2 or None for the INTANG row).
pub type Table4Row = (&'static str, Option<StrategyKind>, [f64; 3], Option<[f64; 3]>);

pub fn rows() -> Vec<Table4Row> {
    vec![
        (
            "Improved TCB Teardown",
            Some(StrategyKind::ImprovedTeardown),
            [0.958, 0.031, 0.011],
            Some([0.898, 0.068, 0.035]),
        ),
        (
            "Improved In-order Data Overlapping",
            Some(StrategyKind::ImprovedInOrderOverlap),
            [0.945, 0.044, 0.011],
            Some([0.927, 0.036, 0.037]),
        ),
        (
            "TCB Creation + Resync/Desync",
            Some(StrategyKind::TcbCreationResyncDesync),
            [0.956, 0.033, 0.011],
            Some([0.846, 0.129, 0.026]),
        ),
        (
            "TCB Teardown + TCB Reversal",
            Some(StrategyKind::TeardownTcbReversal),
            [0.962, 0.026, 0.011],
            Some([0.895, 0.071, 0.033]),
        ),
        ("INTANG Performance (adaptive)", None, [0.983, 0.009, 0.006], None),
    ]
}

/// Observability state shared by both blocks: the telemetry sink, the
/// parsed flags (progress/profile), and the accumulated span profile.
struct BlockCtx<'a> {
    sink: &'a mut Option<TelemetrySink>,
    args: &'a CommonArgs,
    profile: &'a mut intang_telemetry::SpanSheet,
}

fn render_block(out: &mut String, ctx: &mut BlockCtx<'_>, title: &str, scenario: &Scenario, trials: u32, seed: u64, outside: bool) {
    let mut t = Table::new(
        &format!(
            "{title} — {} vp x {} sites x {} trials (paper avg in parentheses)",
            scenario.vantage_points.len(),
            scenario.websites.len(),
            trials
        ),
        &["Strategy", "Success min", "Success max", "Success avg", "F1 avg", "F2 avg"],
    );
    let workers = worker_count();
    let sweeps = rows().iter().filter(|(_, _, _, po)| !outside || po.is_some()).count();
    let cells = scenario.vantage_points.len() * scenario.websites.len();
    let progress = ctx
        .args
        .progress
        .then(|| crate::progress::Progress::start(title, sweeps * cells, workers));
    let mut empty_cells = 0usize;
    for (label, kind, paper_inside, paper_outside) in rows() {
        if outside && paper_outside.is_none() {
            continue; // the paper reports the INTANG row inside China only
        }
        let paper = if outside { paper_outside.unwrap() } else { paper_inside };
        let mut cfg = SweepConfig::new(kind, true, trials, seed);
        cfg.progress = progress.clone();
        let run = sweep_with_threads(scenario, &cfg, workers);
        ctx.profile.merge(&run.profile());
        if let Some(s) = ctx.sink.as_mut() {
            s.record_sweep("table4", &format!("{title}: {label}"), &run)
                .expect("telemetry write");
        }
        let rows = run.rows;
        let s = min_max_avg(&rows, Aggregate::success_rate);
        let f1 = min_max_avg(&rows, Aggregate::failure1_rate);
        let f2 = min_max_avg(&rows, Aggregate::failure2_rate);
        empty_cells += s.empty;
        t.row(vec![
            label.to_string(),
            pct(s.min),
            pct(s.max),
            format!("{} ({})", pct(s.avg), pct(paper[0])),
            format!("{} ({})", pct(f1.avg), pct(paper[1])),
            format!("{} ({})", pct(f2.avg), pct(paper[2])),
        ]);
    }
    out.push_str(&t.render());
    if empty_cells > 0 {
        // Surfaced rather than silently folded into the averages above.
        out.push_str(&format!(
            "(!) {empty_cells} vantage-point row(s) had zero completed trials and were excluded\n"
        ));
    }
    out.push('\n');
}

pub fn run(args: &CommonArgs) -> String {
    let trials = args.trials_or(8);
    let mut out = String::new();
    let mut sink = TelemetrySink::from_args(args);
    args.apply_observability();
    let mut profile = intang_telemetry::SpanSheet::new();
    let mut ctx = BlockCtx {
        sink: &mut sink,
        args,
        profile: &mut profile,
    };
    let inside = args.apply_censor_profile(if args.quick {
        Scenario::smoke(args.seed)
    } else {
        Scenario::paper_inside(args.seed)
    });
    render_block(&mut out, &mut ctx, "Table 4 (inside China)", &inside, trials, args.seed, false);
    let mut outside = Scenario::paper_outside(args.seed);
    if args.quick {
        outside.vantage_points.truncate(2);
        outside.websites.truncate(5);
    }
    outside = args.apply_censor_profile(outside);
    render_block(
        &mut out,
        &mut ctx,
        "Table 4 (outside China)",
        &outside,
        trials,
        args.seed ^ 0x77,
        true,
    );
    args.write_profile_folded(&profile);
    out
}
