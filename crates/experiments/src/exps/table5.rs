//! Table 5: preferred construction of insertion packets — which
//! discrepancy is usable for which packet type, validated three ways:
//! the Table 5 whitelist itself, server-side safety (the server must
//! ignore or at worst be unaffected), and middlebox survivability.

use crate::args::CommonArgs;
use crate::report::Table;
use intang_core::insertion::{Discrepancy, InsertionKind, InsertionSpec};
use intang_middlebox::filter::drop_probability;
use intang_middlebox::ClientSideProfile;
use std::net::Ipv4Addr;

fn spec(kind: InsertionKind, disc: Discrepancy) -> InsertionSpec {
    InsertionSpec {
        src: Ipv4Addr::new(10, 0, 0, 1),
        dst: Ipv4Addr::new(203, 0, 113, 80),
        src_port: 40_000,
        dst_port: 80,
        kind,
        seq: 1000,
        ack: 2000,
        payload: if kind == InsertionKind::Data { vec![b'J'; 8] } else { Vec::new() },
        disc,
        ttl_limit: Some(9),
    }
}

/// Does any Table 2 middlebox profile drop this wire?
fn middlebox_safe(wire: &[u8]) -> bool {
    ClientSideProfile::all_paper_profiles()
        .into_iter()
        .all(|p| drop_probability(&p.filter_spec(), wire) == 0.0)
}

pub fn run(_args: &CommonArgs) -> String {
    let kinds = [
        ("SYN", InsertionKind::Syn),
        ("RST", InsertionKind::Rst),
        ("Data", InsertionKind::Data),
    ];
    let discs = [
        ("TTL", Discrepancy::SmallTtl),
        ("MD5", Discrepancy::Md5Option),
        ("Bad ACK", Discrepancy::BadAck),
        ("Timestamp", Discrepancy::OldTimestamp),
    ];
    let mut t = Table::new(
        "Table 5 — preferred construction of insertion packets (check = whitelisted; * = would be dropped by some middlebox)",
        &["Packet Type", "TTL", "MD5", "Bad ACK", "Timestamp"],
    );
    for (klabel, kind) in kinds {
        let mut row = vec![klabel.to_string()];
        for (_dlabel, disc) in discs {
            let s = spec(kind, disc);
            let mut cell = if s.is_preferred() { "yes".to_string() } else { "-".to_string() };
            if s.is_preferred() && disc != Discrepancy::SmallTtl && !middlebox_safe(&s.build()) {
                cell.push('*');
            }
            row.push(cell);
        }
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_table5() {
        let out = run(&CommonArgs::parse_from(Vec::new()).unwrap());
        let lines: Vec<&str> = out.lines().collect();
        let syn = lines.iter().find(|l| l.starts_with("SYN")).unwrap();
        let rst = lines.iter().find(|l| l.starts_with("RST")).unwrap();
        let data = lines.iter().find(|l| l.starts_with("Data")).unwrap();
        assert_eq!(syn.matches("yes").count(), 1, "SYN: TTL only");
        assert_eq!(rst.matches("yes").count(), 2, "RST: TTL + MD5");
        assert_eq!(data.matches("yes").count(), 4, "Data: all four");
        // §5.3: the discrepancy fields themselves are never filtered — the
        // data row carries no middlebox caveat. (An RST-flagged insertion
        // can still be caught by QCloud's occasional RST dropping, which is
        // about the flag, not the MD5 option.)
        assert!(!data.contains('*'), "data-row discrepancies are middlebox-safe: {data}");
        assert!(!syn.contains('*'));
    }
}
