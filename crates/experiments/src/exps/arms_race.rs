//! §8 — the arms race: harden the censor with the validations it does not
//! perform today (checksum, MD5 option, ACK number, timestamps) and
//! measure which evasion strategies survive.
//!
//! The paper's prediction: field-validation countermeasures are cheap for
//! the censor but do not close the topology-based channel — TTL-scoped
//! insertion packets survive every one of them, because the censor cannot
//! know where the path ends (§8 "one can also leverage GFW's agnostic
//! nature to network topology").

use crate::args::CommonArgs;
use crate::report::{pct, Table};
use crate::scenario::{CensorHardening, CensorModel, Scenario};
use crate::trial::{run_http_trial, Outcome, TrialSpec};
use intang_core::{Discrepancy, StrategyKind};
use intang_gfw::CensorProfile;

fn regimes() -> Vec<(&'static str, CensorHardening)> {
    vec![
        ("today's GFW (no validation)", CensorHardening::default()),
        (
            "+ checksum validation",
            CensorHardening {
                validate_checksum: true,
                ..CensorHardening::default()
            },
        ),
        (
            "+ MD5 option rejection",
            CensorHardening {
                check_md5: true,
                ..CensorHardening::default()
            },
        ),
        (
            "+ ACK validation",
            CensorHardening {
                check_ack: true,
                ..CensorHardening::default()
            },
        ),
        (
            "+ timestamp (PAWS) check",
            CensorHardening {
                check_timestamp: true,
                ..CensorHardening::default()
            },
        ),
        ("all four at once", CensorHardening::all()),
    ]
}

fn strategies() -> Vec<(&'static str, StrategyKind)> {
    vec![
        ("in-order/bad-csum", StrategyKind::InOrderOverlap(Discrepancy::BadChecksum)),
        ("in-order/bad-ACK", StrategyKind::InOrderOverlap(Discrepancy::BadAck)),
        ("in-order/TTL", StrategyKind::InOrderOverlap(Discrepancy::SmallTtl)),
        ("improved teardown (TTL)", StrategyKind::ImprovedTeardown),
        ("resync+desync (TTL)", StrategyKind::TcbCreationResyncDesync),
    ]
}

pub fn run(args: &CommonArgs) -> String {
    let scenario = Scenario::paper_inside(args.seed);
    let trials = args.trials_or(6);
    // A middlebox-benign evolved-only path isolates the censor-side effect.
    let mut site = scenario.websites[0].clone();
    site.old_device = false;
    site.evolved_device = true;
    site.server_seqfw = false;
    site.server_conntrack = false;
    site.flaky_server = false;
    site.path_drops_noflag = false;
    site.loss = 0.0;
    let vp = &scenario.vantage_points[0];

    let header: Vec<&str> = std::iter::once("Censor regime")
        .chain(strategies().iter().map(|(n, _)| *n))
        .collect();
    let mut t = Table::new(
        &format!("§8 arms race — strategy survival under censor hardening ({trials} trials/cell)"),
        &header,
    );
    for (regime_name, hardening) in regimes() {
        let mut row = vec![regime_name.to_string()];
        let mut hsite = site.clone();
        hsite.hardening = hardening;
        for (_, kind) in strategies() {
            let mut ok = 0;
            for tr in 0..trials {
                let mut spec = TrialSpec::new(vp, &hsite, Some(kind), true, args.seed ^ 0xace ^ u64::from(tr));
                spec.route_change_prob = 0.0;
                if run_http_trial(&spec).outcome == Outcome::Success {
                    ok += 1;
                }
            }
            row.push(pct(f64::from(ok) / f64::from(trials)));
        }
        t.row(row);
    }
    // Profile-compiled censors ride the same strategy grid: the evolved
    // profile must behave like the builtin evolved device, and the
    // turkmenistan profile (type-1 + blockpage, no resync machinery) is a
    // strictly weaker adversary for the TTL-scoped family.
    for (regime_name, profile) in [
        ("gfw_evolved profile, no validation", CensorProfile::gfw_evolved()),
        ("turkmenistan profile, no validation", CensorProfile::turkmenistan()),
    ] {
        let cfg = profile.compile().expect("builtin profiles compile");
        let mut row = vec![regime_name.to_string()];
        let mut hsite = site.clone();
        hsite.censor = CensorModel::Custom(cfg);
        for (_, kind) in strategies() {
            let mut ok = 0;
            for tr in 0..trials {
                let mut spec = TrialSpec::new(vp, &hsite, Some(kind), true, args.seed ^ 0xace ^ u64::from(tr));
                spec.route_change_prob = 0.0;
                if run_http_trial(&spec).outcome == Outcome::Success {
                    ok += 1;
                }
            }
            row.push(pct(f64::from(ok) / f64::from(trials)));
        }
        t.row(row);
    }
    let mut out = t.render();
    out.push_str(
        "\nField-validation countermeasures kill exactly the strategy built on\n\
         the validated field; the TTL-scoped strategies survive all of them —\n\
         closing that channel would require the censor to learn per-path\n\
         topology, the escalation §8 argues is qualitatively more expensive.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardening_kills_matching_strategy_but_not_ttl() {
        let out = run(&CommonArgs::parse_from(vec!["--trials".into(), "4".into()]).unwrap());
        let line = |prefix: &str| -> Vec<f64> {
            out.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("{prefix} row missing:\n{out}"))
                .split_whitespace()
                .filter(|w| w.ends_with('%'))
                .map(|w| w.trim_end_matches('%').parse().unwrap())
                .collect()
        };
        // Columns: bad-csum, bad-ACK, TTL, improved-teardown, resync+desync.
        let baseline = line("today's GFW");
        assert!(baseline.iter().all(|r| *r >= 75.0), "all work today: {baseline:?}");
        let csum = line("+ checksum validation");
        assert!(csum[0] <= 25.0, "checksum validation kills bad-csum junk: {csum:?}");
        assert!(csum[2] >= 75.0, "TTL survives: {csum:?}");
        let ack = line("+ ACK validation");
        assert!(ack[1] <= 25.0, "ACK validation kills bad-ACK junk: {ack:?}");
        let all = line("all four at once");
        assert!(all[0] <= 25.0 && all[1] <= 25.0);
        assert!(
            all[2] >= 75.0 && all[3] >= 75.0 && all[4] >= 75.0,
            "TTL-scoped family survives everything: {all:?}"
        );
        // The profile-compiled rows run the same machinery: the evolved
        // profile keeps the full strategy grid alive, and turkmenistan —
        // no resync, no type-2 volley — cannot beat the TTL family either.
        let profile = line("gfw_evolved profile");
        assert!(profile.iter().all(|r| *r >= 75.0), "evolved profile matches builtin: {profile:?}");
        let tk = line("turkmenistan profile");
        assert!(
            tk[2] >= 75.0 && tk[3] >= 75.0 && tk[4] >= 75.0,
            "TTL-scoped family beats the blockpage censor: {tk:?}"
        );
    }
}
