//! §2.1 — fingerprint the censor's reset injections from the client side:
//! type-1 (bare RST, random TTL/window) vs type-2 (three RST/ACKs at
//! X, X+1460, X+4380, cyclic TTL/window), the 90-second blacklist with
//! forged SYN/ACKs, and its expiry.

use crate::args::CommonArgs;
use crate::scenario::Scenario;
use crate::tap::RecorderTap;
use intang_apps::host::add_host;
use intang_apps::http::{HttpClientDriver, HttpServerDriver};
use intang_apps::{HostDriver, UdpLayer};
use intang_gfw::GfwElement;
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::http::HttpRequest;
use intang_packet::{Ipv4Packet, TcpFlags, TcpPacket};
use intang_tcpstack::{StackProfile, TcpEndpoint};
use std::net::Ipv4Addr;

/// Runs several drivers on one host (sequential fetches share the stack).
struct MultiDriver(Vec<Box<dyn HostDriver>>);

impl HostDriver for MultiDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, udp: &mut UdpLayer) {
        for d in &mut self.0 {
            d.poll(now, tcp, udp);
        }
    }

    fn next_wakeup(&self) -> Option<Instant> {
        self.0.iter().filter_map(|d| d.next_wakeup()).min()
    }
}

struct FingerprintRun {
    type1: Vec<(u8, u16, u32)>, // (ttl, window, seq)
    type2: Vec<(u8, u16, u32)>,
    forged_synacks: u64,
    blacklist_hits: u64,
    late_success: bool,
}

fn run_fingerprint(seed: u64) -> FingerprintRun {
    let scenario = Scenario::smoke(seed);
    let site = &scenario.websites[0];
    let client_addr = Ipv4Addr::new(10, 10, 1, 2);

    let mut sim = Simulation::new(seed);
    // Fetch 1 at t=0 carries the keyword (censored). Fetch 2 at t=10 s is a
    // clean request inside the blacklist window (still disrupted). Fetch 3
    // at t=95 s is after expiry (succeeds).
    let (d1, _r1) = HttpClientDriver::new(site.addr, 80, HttpRequest::get("/search?q=ultrasurf", &site.name));
    let (d2, _r2) = HttpClientDriver::new(site.addr, 80, HttpRequest::get("/clean.html", &site.name));
    let d2 = d2.starting_at(Instant(10_000_000));
    let (d3, r3) = HttpClientDriver::new(site.addr, 80, HttpRequest::get("/clean.html", &site.name));
    let d3 = d3.starting_at(Instant(95_000_000));
    let multi = MultiDriver(vec![Box::new(d1), Box::new(d2), Box::new(d3)]);
    let (_cidx, _ch) = add_host(
        &mut sim,
        "client",
        client_addr,
        StackProfile::linux_4_4(),
        Box::new(multi),
        Direction::ToServer,
    );
    // HttpClientDriver has no periodic wakeup; kick the delayed fetches.
    sim.schedule_timer(0, Instant(10_000_000), 1);
    sim.schedule_timer(0, Instant(95_000_000), 1);

    sim.add_link(Link::new(Duration::from_micros(50), 0));
    let (tap, tap_handle) = RecorderTap::new("client-tap");
    sim.add_element(Box::new(tap));

    sim.add_link(Link::new(Duration::from_millis(5), 4));
    let mut cfg = intang_gfw::GfwConfig::evolved();
    cfg.overload_miss_prob = 0.0;
    let (gfw, gfw_handle) = GfwElement::new(cfg);
    sim.add_element(Box::new(gfw));

    sim.add_link(Link::new(Duration::from_millis(10), 5));
    let (_i, sh) = add_host(
        &mut sim,
        "server",
        site.addr,
        StackProfile::linux_4_4(),
        Box::new(HttpServerDriver::new(80)),
        Direction::ToClient,
    );
    sh.with_tcp(|t| t.listen(80));

    sim.run_until(Instant(110_000_000));

    let mut type1 = Vec::new();
    let mut type2 = Vec::new();
    for c in tap_handle.captures() {
        if c.dir != Direction::ToClient {
            continue;
        }
        let Ok(ip) = Ipv4Packet::new_checked(&c.wire[..]) else { continue };
        let Ok(t) = TcpPacket::new_checked(ip.payload()) else { continue };
        if t.flags() == TcpFlags::RST {
            type1.push((ip.ttl(), t.window(), t.seq_number()));
        } else if t.flags() == TcpFlags::RST_ACK {
            type2.push((ip.ttl(), t.window(), t.seq_number()));
        }
    }
    let late_success = r3.borrow().succeeded();
    FingerprintRun {
        type1,
        type2,
        forged_synacks: gfw_handle.forged_synacks(),
        blacklist_hits: gfw_handle.blacklist_hits(),
        late_success,
    }
}

pub fn run(args: &CommonArgs) -> String {
    let fp = run_fingerprint(args.seed);
    let mut out = String::from("== §2.1 reset fingerprinting (observed at the client) ==\n");
    out.push_str(&format!("type-1 bare RSTs seen : {}\n", fp.type1.len()));
    for (ttl, win, seq) in fp.type1.iter().take(4) {
        out.push_str(&format!("   RST      ttl={ttl:<4} window={win:<6} seq={seq}\n"));
    }
    out.push_str(&format!("type-2 RST/ACKs seen  : {}\n", fp.type2.len()));
    for (ttl, win, seq) in fp.type2.iter().take(6) {
        out.push_str(&format!("   RST/ACK  ttl={ttl:<4} window={win:<6} seq={seq}\n"));
    }
    if fp.type2.len() >= 3 {
        let s0 = fp.type2[0].2;
        let offs: Vec<u32> = fp.type2.iter().take(3).map(|x| x.2.wrapping_sub(s0)).collect();
        out.push_str(&format!("type-2 burst seq offsets: {:?} (paper: [0, 1460, 4380])\n", offs));
        let ttls: Vec<u8> = fp.type2.iter().map(|x| x.0).collect();
        let cyclic = ttls.windows(2).all(|w| w[1] > w[0]);
        out.push_str(&format!("type-2 TTLs cyclically increasing: {}\n", cyclic));
    }
    out.push_str(&format!(
        "blacklist: {} packets disrupted during the 90 s window; forged SYN/ACKs injected: {}\n",
        fp.blacklist_hits, fp.forged_synacks
    ));
    out.push_str(&format!("fetch after blacklist expiry (t=95 s) succeeded: {}\n", fp.late_success));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_match_section_2_1() {
        let out = run(&CommonArgs::parse_from(Vec::new()).unwrap());
        assert!(out.contains("[0, 1460, 4380]"), "{out}");
        assert!(out.contains("cyclically increasing: true"), "{out}");
        assert!(out.contains("succeeded: true"), "{out}");
        let fp = run_fingerprint(2017);
        assert!(!fp.type1.is_empty());
        assert!(fp.type2.len() >= 3);
        assert!(fp.forged_synacks >= 1, "the in-blacklist SYN drew a forged SYN/ACK");
        assert!(fp.blacklist_hits >= 1);
    }
}
