//! Table 3: candidate insertion packets derived by the differential
//! "ignore path" analysis, annotated with the §5.3 cross-validations.

use crate::args::CommonArgs;
use crate::report::Table;
use intang_gfw::GfwConfig;
use intang_ignorepath::confirm::observe_disposition;
use intang_ignorepath::derive_table3;
use intang_ignorepath::disposition::server_disposition;
use intang_tcpstack::StackProfile;

pub fn run(_args: &CommonArgs) -> String {
    let server = StackProfile::linux_4_4();
    let censor = GfwConfig::evolved();
    let findings = derive_table3(&server, &censor);

    let mut t = Table::new(
        "Table 3 — discrepancies between GFW and server (Linux 4.4) on ignoring packets",
        &[
            "TCP State",
            "GFW State",
            "TCP Flags",
            "Condition",
            "Confirmed",
            "Middlebox-dropped-by",
            "Old-kernel caveats",
        ],
    );
    for f in &findings {
        let row = f.render_row();
        // Probing test: fire the packet at the executable stack and check
        // the predicted ignore actually happens in each claimed state.
        let confirmed = f.states.iter().all(|&st| {
            observe_disposition(server, st, f.class) == server_disposition(&server, st, f.class)
                && server_disposition(&server, st, f.class) == intang_ignorepath::Disposition::Ignore
        });
        t.row(vec![
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
            if confirmed { "yes".into() } else { "NO".into() },
            if f.dropped_by.is_empty() {
                "-".into()
            } else {
                f.dropped_by.join(",")
            },
            if f.version_caveats.is_empty() {
                "-".into()
            } else {
                f.version_caveats.join("; ")
            },
        ]);
    }

    let mut out = t.render();
    out.push_str("\nCross-validation sweep (server versions x candidate classes):\n");
    for profile in StackProfile::all() {
        let n = derive_table3(&profile, &censor).len();
        out.push_str(&format!(
            "  {:<14} -> {} usable insertion-packet classes\n",
            profile.version.to_string(),
            n
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_confirms_against_the_executable_stack() {
        let out = run(&CommonArgs::parse_from(Vec::new()).unwrap());
        assert!(!out.contains("NO"), "all findings must confirm:\n{out}");
        assert!(out.contains("unsolicited MD5"));
        assert!(out.contains("Timestamps too old"));
    }

    #[test]
    fn first_rows_cover_any_state() {
        let out = run(&CommonArgs::parse_from(Vec::new()).unwrap());
        assert!(out.contains("IP total length > actual length"));
        assert!(out.contains("TCP Header Length < 20"));
        assert!(out.contains("TCP checksum incorrect"));
    }
}
