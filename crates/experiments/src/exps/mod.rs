//! One module per reproduced artifact; each exposes `run(&CommonArgs) ->
//! String` so the `all` binary and integration tests can drive them.

pub mod ablations;
pub mod arms_race;
pub mod convergence;
pub mod device_types;
pub mod fault_matrix;
pub mod figures;
pub mod hypotheses;
pub mod reset_fingerprint;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod tor_vpn;
