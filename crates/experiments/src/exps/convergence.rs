//! Convergence dynamics of INTANG's adaptive selection (§6): success rate
//! as a function of trial index toward the same destinations. Early trials
//! pay for exploration; later trials ride the converged per-server choice —
//! the dynamics behind Table 4's "INTANG Performance" row.

use crate::args::CommonArgs;
use crate::report::{pct, Table};
use crate::scenario::Scenario;
use crate::trial::{run_http_trial, Outcome, TrialSpec};
use intang_core::select::History;
use std::cell::RefCell;
use std::rc::Rc;

/// Per-round success rates over `rounds` consecutive trials against every
/// (vantage point, site) pair, history shared within each pair.
pub fn convergence_curve(scenario: &Scenario, rounds: u32, seed: u64) -> Vec<f64> {
    let mut ok = vec![0u32; rounds as usize];
    let mut n = vec![0u32; rounds as usize];
    for (vi, vp) in scenario.vantage_points.iter().enumerate() {
        for (si, site) in scenario.websites.iter().enumerate() {
            let history: Rc<RefCell<History>> = Rc::new(RefCell::new(History::new()));
            for r in 0..rounds {
                let s = seed ^ ((vi as u64) << 40) ^ ((si as u64) << 20) ^ u64::from(r);
                let mut spec = TrialSpec::new(vp, site, None, true, s);
                spec.history = Some(history.clone());
                n[r as usize] += 1;
                if run_http_trial(&spec).outcome == Outcome::Success {
                    ok[r as usize] += 1;
                }
            }
        }
    }
    ok.iter().zip(&n).map(|(o, t)| f64::from(*o) / f64::from((*t).max(1))).collect()
}

pub fn run(args: &CommonArgs) -> String {
    let mut scenario = if args.quick {
        Scenario::smoke(args.seed)
    } else {
        Scenario::paper_inside(args.seed)
    };
    if !args.quick {
        // Keep the sweep affordable: a quarter of the full grid suffices
        // for the curve's shape.
        scenario.vantage_points.truncate(4);
        scenario.websites.truncate(24);
    }
    let rounds = args.trials_or(10);
    let curve = convergence_curve(&scenario, rounds, args.seed);
    let mut t = Table::new(
        &format!(
            "§6 adaptive convergence — success per round, {} vp x {} sites, shared history per pair",
            scenario.vantage_points.len(),
            scenario.websites.len()
        ),
        &["Round", "Success", "bar"],
    );
    for (i, rate) in curve.iter().enumerate() {
        let bar = "#".repeat((rate * 40.0) as usize);
        t.row(vec![(i + 1).to_string(), pct(*rate), bar]);
    }
    let mut out = t.render();
    let early = curve.first().copied().unwrap_or(0.0);
    let late = curve.last().copied().unwrap_or(0.0);
    out.push_str(&format!(
        "\nround 1 (cold cache): {}; round {} (converged): {} — exploration cost\nis front-loaded, exactly the behavior the paper's caching is for.\n",
        pct(early),
        rounds,
        pct(late)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn later_rounds_do_not_degrade() {
        let scenario = Scenario::smoke(31);
        let curve = convergence_curve(&scenario, 8, 31);
        assert_eq!(curve.len(), 8);
        let early = curve[0];
        let late_avg = curve[5..].iter().sum::<f64>() / 3.0;
        assert!(late_avg + 0.10 >= early, "convergence never loses ground: {curve:?}");
        assert!(late_avg >= 0.8, "converged success is high: {curve:?}");
    }
}
