//! §4 — validate the three Hypothesized New Behaviors with scripted probes
//! against the executable censor, mirroring the paper's controlled
//! client/server experiments (partial handshakes, multiple SYNs, forced
//! RSTs).

use crate::args::CommonArgs;
use intang_gfw::tcb::CensorState;
use intang_gfw::{GfwConfig, GfwElement, GfwHandle};
use intang_netsim::element::PassThrough;
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::{FourTuple, PacketBuilder, TcpFlags, Wire};
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);
const CPORT: u16 = 40_000;

struct Probe {
    sim: Simulation,
    gfw: GfwHandle,
    t: u64,
}

impl Probe {
    fn new(cfg: GfwConfig, seed: u64) -> Probe {
        let mut sim = Simulation::new(seed);
        sim.add_element(Box::new(PassThrough::new("client-edge")));
        sim.add_link(Link::new(Duration::from_millis(1), 2));
        let (el, gfw) = GfwElement::new(cfg.deterministic());
        sim.add_element(Box::new(el));
        sim.add_link(Link::new(Duration::from_millis(1), 2));
        sim.add_element(Box::new(PassThrough::new("server-edge")));
        Probe { sim, gfw, t: 0 }
    }

    fn tuple(&self) -> FourTuple {
        FourTuple::new(CLIENT, CPORT, SERVER, 80)
    }

    fn send_client(&mut self, wire: Wire) {
        self.t += 5_000;
        self.sim.inject_at(0, Direction::ToServer, wire, Instant(self.t));
        self.sim.run_to_quiescence(10_000);
    }

    fn send_server(&mut self, wire: Wire) {
        self.t += 5_000;
        self.sim.inject_at(2, Direction::ToClient, wire, Instant(self.t));
        self.sim.run_to_quiescence(10_000);
    }

    fn c2s(&self) -> PacketBuilder {
        PacketBuilder::tcp(CLIENT, SERVER, CPORT, 80)
    }

    fn s2c(&self) -> PacketBuilder {
        PacketBuilder::tcp(SERVER, CLIENT, 80, CPORT)
    }
}

fn check(out: &mut String, name: &str, pass: bool) -> bool {
    out.push_str(&format!("  [{}] {}\n", if pass { "PASS" } else { "FAIL" }, name));
    pass
}

pub fn run(args: &CommonArgs) -> String {
    let mut out = String::from("== §4 Hypothesized New Behaviors — probing the executable censor ==\n");
    let mut all = true;
    let seed = args.seed;

    // ---------------- Hypothesis 1: TCB creation --------------------------
    out.push_str("Hypothesized New Behavior 1 (TCB creation):\n");
    {
        let mut p = Probe::new(GfwConfig::evolved(), seed);
        p.send_client(p.c2s().seq(1000).flags(TcpFlags::SYN).build());
        all &= check(&mut out, "TCB created upon SYN", p.gfw.has_tcb(p.tuple()));
    }
    {
        let mut p = Probe::new(GfwConfig::evolved(), seed);
        p.send_server(p.s2c().seq(9000).ack(1001).flags(TcpFlags::SYN_ACK).build());
        let created = p.gfw.has_tcb(p.tuple());
        let oriented = p.gfw.believed_client(p.tuple()) == Some((CLIENT, CPORT));
        all &= check(
            &mut out,
            "TCB created upon SYN/ACK without a SYN (source believed to be the server)",
            created && oriented,
        );
    }
    {
        let mut p = Probe::new(GfwConfig::old(), seed);
        p.send_server(p.s2c().seq(9000).ack(1001).flags(TcpFlags::SYN_ACK).build());
        all &= check(
            &mut out,
            "prior model does NOT create a TCB from a SYN/ACK",
            !p.gfw.has_tcb(p.tuple()),
        );
    }

    // ---------------- Hypothesis 2: resynchronization state ---------------
    out.push_str("Hypothesized New Behavior 2 (resynchronization state):\n");
    {
        let mut p = Probe::new(GfwConfig::evolved(), seed);
        p.send_client(p.c2s().seq(1000).flags(TcpFlags::SYN).build());
        p.send_client(p.c2s().seq(77_000).flags(TcpFlags::SYN).build());
        all &= check(
            &mut out,
            "(a) multiple SYNs enter the resync state",
            p.gfw.tcb_state(p.tuple()) == Some(CensorState::Resync),
        );
        // The next client data packet re-anchors; a keyword at the *old*
        // sequence is then invisible.
        p.send_client(
            p.c2s()
                .seq(500_000)
                .ack(9001)
                .flags(TcpFlags::PSH_ACK)
                .payload(b"random-decoy")
                .build(),
        );
        all &= check(
            &mut out,
            "resync resolves on the next client data packet",
            p.gfw.tcb_state(p.tuple()) == Some(CensorState::Tracking),
        );
        p.send_client(
            p.c2s()
                .seq(1001)
                .ack(9001)
                .flags(TcpFlags::PSH_ACK)
                .payload(b"GET /ultrasurf HTTP/1.1\r\n\r\n")
                .build(),
        );
        all &= check(
            &mut out,
            "request at the now-out-of-window true sequence evades",
            !p.gfw.detected_any(),
        );
    }
    {
        // Refuting interpretation (2): split keyword still detected, so the
        // censor reassembles rather than matching per-packet.
        let mut p = Probe::new(GfwConfig::evolved(), seed);
        p.send_client(p.c2s().seq(1000).flags(TcpFlags::SYN).build());
        p.send_server(p.s2c().seq(9000).ack(1001).flags(TcpFlags::SYN_ACK).build());
        p.send_client(p.c2s().seq(1001).ack(9001).flags(TcpFlags::PSH_ACK).payload(b"GET /ultra").build());
        p.send_client(
            p.c2s()
                .seq(1011)
                .ack(9001)
                .flags(TcpFlags::PSH_ACK)
                .payload(b"surf HTTP/1.1\r\n\r\n")
                .build(),
        );
        all &= check(&mut out, "split keyword detected (refutes 'stateless mode')", p.gfw.detected_any());
    }
    {
        let mut p = Probe::new(GfwConfig::evolved(), seed);
        p.send_client(p.c2s().seq(1000).flags(TcpFlags::SYN).build());
        p.send_server(p.s2c().seq(9000).ack(1001).flags(TcpFlags::SYN_ACK).build());
        p.send_server(p.s2c().seq(9500).ack(1001).flags(TcpFlags::SYN_ACK).build());
        all &= check(
            &mut out,
            "(b) multiple SYN/ACKs enter the resync state",
            p.gfw.tcb_state(p.tuple()) == Some(CensorState::Resync),
        );
        // A later server SYN/ACK resolves it.
        p.send_server(p.s2c().seq(9000).ack(1001).flags(TcpFlags::SYN_ACK).build());
        all &= check(
            &mut out,
            "a server SYN/ACK resolves the resync state",
            p.gfw.tcb_state(p.tuple()) == Some(CensorState::Tracking),
        );
    }
    {
        let mut p = Probe::new(GfwConfig::evolved(), seed);
        p.send_client(p.c2s().seq(1000).flags(TcpFlags::SYN).build());
        p.send_server(p.s2c().seq(9000).ack(5_555).flags(TcpFlags::SYN_ACK).build()); // wrong ack
        all &= check(
            &mut out,
            "(c) a SYN/ACK with a mismatched ACK enters the resync state",
            p.gfw.tcb_state(p.tuple()) == Some(CensorState::Resync),
        );
        // Neither pure ACKs nor server data resolve it (§4).
        p.send_client(p.c2s().seq(1001).ack(9001).flags(TcpFlags::ACK).build());
        all &= check(
            &mut out,
            "a pure client ACK does NOT resolve resync",
            p.gfw.tcb_state(p.tuple()) == Some(CensorState::Resync),
        );
        p.send_server(p.s2c().seq(9001).ack(1001).flags(TcpFlags::PSH_ACK).payload(b"server data").build());
        all &= check(
            &mut out,
            "server->client data does NOT resolve resync",
            p.gfw.tcb_state(p.tuple()) == Some(CensorState::Resync),
        );
    }

    // ---------------- Hypothesis 3: RST may resync instead of teardown ----
    out.push_str("Hypothesized New Behavior 3 (RST handling):\n");
    {
        let mut p = Probe::new(GfwConfig::evolved(), seed);
        p.gfw.force_rst_resync(true);
        p.send_client(p.c2s().seq(1000).flags(TcpFlags::SYN).build());
        p.send_server(p.s2c().seq(9000).ack(1001).flags(TcpFlags::SYN_ACK).build());
        p.send_client(p.c2s().seq(1001).ack(9001).flags(TcpFlags::ACK).build());
        p.send_client(p.c2s().seq(1001).flags(TcpFlags::RST).build());
        let survived = p.gfw.has_tcb(p.tuple());
        let resync = p.gfw.tcb_state(p.tuple()) == Some(CensorState::Resync);
        all &= check(&mut out, "an RST may leave the TCB alive in the resync state", survived && resync);
        p.send_client(
            p.c2s()
                .seq(1001)
                .ack(9001)
                .flags(TcpFlags::PSH_ACK)
                .payload(b"GET /ultrasurf HTTP/1.1\r\n\r\n")
                .build(),
        );
        all &= check(
            &mut out,
            "...and the censor still detects the keyword afterwards",
            p.gfw.detected_any(),
        );
    }
    {
        let mut p = Probe::new(GfwConfig::evolved(), seed);
        p.gfw.force_rst_resync(false);
        p.send_client(p.c2s().seq(1000).flags(TcpFlags::SYN).build());
        p.send_client(p.c2s().seq(1001).flags(TcpFlags::RST).build());
        all &= check(
            &mut out,
            "in the teardown regime the RST removes the TCB",
            !p.gfw.has_tcb(p.tuple()),
        );
    }
    {
        let mut p = Probe::new(GfwConfig::evolved(), seed);
        p.send_client(p.c2s().seq(1000).flags(TcpFlags::SYN).build());
        p.send_client(p.c2s().seq(1001).ack(9001).flags(TcpFlags::FIN).build());
        let evolved_keeps = p.gfw.has_tcb(p.tuple());
        let mut p2 = Probe::new(GfwConfig::old(), seed);
        p2.send_client(p2.c2s().seq(1000).flags(TcpFlags::SYN).build());
        p2.send_client(p2.c2s().seq(1001).ack(9001).flags(TcpFlags::FIN).build());
        let old_tears = !p2.gfw.has_tcb(p2.tuple());
        all &= check(
            &mut out,
            "FIN no longer tears down the evolved TCB (but did on the prior model)",
            evolved_keeps && old_tears,
        );
    }

    out.push_str(if all {
        "ALL HYPOTHESIS PROBES PASSED\n"
    } else {
        "SOME PROBES FAILED\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_probes_pass() {
        let out = run(&CommonArgs::parse_from(Vec::new()).unwrap());
        assert!(out.contains("ALL HYPOTHESIS PROBES PASSED"), "{out}");
        assert!(!out.contains("FAIL]"), "{out}");
    }
}
