//! A passive recording tap for experiments: captures every packet crossing
//! its position (used for reset fingerprinting and the Table 2 probes).

use intang_netsim::{Ctx, Direction, Element, Instant};
use intang_packet::Wire;
use std::cell::RefCell;
use std::rc::Rc;

/// One captured packet.
#[derive(Debug, Clone)]
pub struct Captured {
    pub at: Instant,
    pub dir: Direction,
    pub wire: Wire,
}

/// The tap element; clone the [`TapHandle`] to read captures.
pub struct RecorderTap {
    label: String,
    log: Rc<RefCell<Vec<Captured>>>,
}

#[derive(Clone)]
pub struct TapHandle {
    log: Rc<RefCell<Vec<Captured>>>,
}

impl RecorderTap {
    pub fn new(label: &str) -> (RecorderTap, TapHandle) {
        let log = Rc::new(RefCell::new(Vec::new()));
        (
            RecorderTap {
                label: label.to_string(),
                log: log.clone(),
            },
            TapHandle { log },
        )
    }
}

impl TapHandle {
    pub fn captures(&self) -> Vec<Captured> {
        self.log.borrow().clone()
    }

    pub fn count(&self) -> usize {
        self.log.borrow().len()
    }

    pub fn count_dir(&self, dir: Direction) -> usize {
        self.log.borrow().iter().filter(|c| c.dir == dir).count()
    }

    pub fn clear(&self) {
        self.log.borrow_mut().clear();
    }

    /// Export everything captured as a classic libpcap file (LINKTYPE_RAW),
    /// openable in Wireshark.
    pub fn to_pcap(&self) -> intang_netsim::pcap::PcapWriter {
        let mut w = intang_netsim::pcap::PcapWriter::new();
        for c in self.log.borrow().iter() {
            w.record(c.at, &c.wire);
        }
        w
    }
}

impl Element for RecorderTap {
    fn name(&self) -> &str {
        &self.label
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        self.log.borrow_mut().push(Captured {
            at: ctx.now,
            dir,
            wire: wire.clone(),
        });
        ctx.send(dir, wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_netsim::element::PassThrough;
    use intang_netsim::{Duration, Link, Simulation};

    #[test]
    fn records_and_forwards() {
        let mut sim = Simulation::new(1);
        sim.add_element(Box::new(PassThrough::new("a")));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        let (tap, handle) = RecorderTap::new("tap");
        sim.add_element(Box::new(tap));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(PassThrough::new("b")));
        let pkt = intang_packet::PacketBuilder::tcp(std::net::Ipv4Addr::new(1, 1, 1, 1), std::net::Ipv4Addr::new(2, 2, 2, 2), 1, 2).build();
        sim.inject_at(0, Direction::ToServer, pkt.clone(), Instant::ZERO);
        sim.inject_at(2, Direction::ToClient, pkt, Instant(10));
        sim.run_to_quiescence(50);
        assert_eq!(handle.count(), 2);
        assert_eq!(handle.count_dir(Direction::ToServer), 1);
        assert_eq!(handle.count_dir(Direction::ToClient), 1);
        let pcap = handle.to_pcap();
        assert_eq!(pcap.packet_count(), 2);
        let parsed = intang_netsim::pcap::parse(pcap.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        handle.clear();
        assert_eq!(handle.count(), 0);
    }
}
