//! One measurement trial: assemble the full threat-model path (Fig. 1),
//! fetch a page, classify the outcome.

use crate::scenario::{VantagePoint, Website};
use intang_apps::host::add_host;
use intang_apps::http::{listen, HttpClientDriver, HttpServerDriver};
use intang_core::select::History;
use intang_core::{IntangConfig, IntangElement, RobustnessConfig, StrategyKind};
use intang_faults::FaultPlan;
use intang_gfw::{GfwElement, GfwHandle};
use intang_middlebox::{FieldFilter, FilterSpec, FragmentHandler, SeqStrictFirewall, StatefulFirewall};
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::http::HttpRequest;
use intang_telemetry::metrics::{ADAPTIVE_SLOT, OUTCOME_FAILURE1, OUTCOME_FAILURE2, OUTCOME_SUCCESS};
use intang_telemetry::{span, Counter, FailureVector, HistId, MetricsSheet, SeriesSheet, SpanId, TrialEvidence, TrialOutcome};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Per-shard memo of encoded GET requests: a sweep re-runs the same
/// `(target, host)` pairs thousands of times, and the encoded bytes are
/// what every trial actually needs — build each once per thread.
fn encoded_request(target: &str, host: &str) -> Rc<Vec<u8>> {
    type RequestCache = Vec<((String, String), Rc<Vec<u8>>)>;
    thread_local! {
        static CACHE: RefCell<RequestCache> = const { RefCell::new(Vec::new()) };
    }
    CACHE.with(|c| {
        let mut cache = c.borrow_mut();
        if let Some((_, bytes)) = cache.iter().find(|((t, h), _)| t == target && h == host) {
            return bytes.clone();
        }
        let bytes = Rc::new(HttpRequest::get(target, host).encode());
        cache.push(((target.to_string(), host.to_string()), bytes.clone()));
        bytes
    })
}

/// The paper's outcome taxonomy (§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// HTTP response received, no resets from the censor.
    Success,
    /// No response and no resets (the connection hung).
    Failure1,
    /// Reset packets received (type-1 or type-2).
    Failure2,
}

impl Outcome {
    /// Telemetry view of the taxonomy ([`intang_telemetry`] keeps its own
    /// enum so the crate stays dependency-free).
    pub fn telemetry(self) -> TrialOutcome {
        match self {
            Outcome::Success => TrialOutcome::Success,
            Outcome::Failure1 => TrialOutcome::SilentFailure,
            Outcome::Failure2 => TrialOutcome::ResetFailure,
        }
    }
}

/// Everything defining one trial.
pub struct TrialSpec<'a> {
    pub vp: &'a VantagePoint,
    pub site: &'a Website,
    /// Fixed strategy, or None for INTANG's adaptive selection.
    pub strategy: Option<StrategyKind>,
    /// Request carries the sensitive keyword (`ultrasurf`).
    pub keyword: bool,
    pub seed: u64,
    /// Insertion redundancy (§3.4 uses 3).
    pub redundancy: u32,
    /// Shared history for adaptive mode (persisted across trials).
    pub history: Option<Rc<RefCell<History>>>,
    /// Probability that the route mutates mid-trial (§3.4 network
    /// dynamics), invalidating the TTL measurement.
    pub route_change_prob: f64,
    /// δ subtracted from the hop estimate when scoping insertion TTLs
    /// (§7.1 heuristic; the ablations sweep it).
    pub delta: u8,
    /// Realized fault schedule for this trial (`None` = pristine path;
    /// an absent plan leaves the simulation byte-identical to a build
    /// without the fault layer).
    pub faults: Option<FaultPlan>,
    /// Event horizon: the trial runs until this simulated time. The
    /// simcheck shrinker bisects it downward to find the smallest horizon
    /// that still reproduces a violation.
    pub horizon: Instant,
    /// Pin the first ISN both stacks draw (wraparound property tests pin
    /// this near `u32::MAX`); `None` keeps the stacks' own counters.
    pub isn_base: Option<u32>,
}

impl<'a> TrialSpec<'a> {
    pub fn new(vp: &'a VantagePoint, site: &'a Website, strategy: Option<StrategyKind>, keyword: bool, seed: u64) -> Self {
        TrialSpec {
            vp,
            site,
            strategy,
            keyword,
            seed,
            redundancy: 3,
            history: None,
            route_change_prob: 0.12,
            delta: 2,
            faults: None,
            horizon: DEFAULT_HORIZON,
            isn_base: None,
        }
    }
}

/// Default trial horizon (25 simulated seconds).
pub const DEFAULT_HORIZON: Instant = Instant(25_000_000);

/// Detailed result of a trial.
#[derive(Debug)]
pub struct TrialResult {
    pub outcome: Outcome,
    pub response_status: Option<u16>,
    pub resets_seen: u64,
    pub gfw_detections: usize,
    pub strategy_used: Option<StrategyKind>,
    /// Simulation events processed during the trial (throughput metric).
    pub events: u64,
    /// Metrics exported from every element on the path after the run,
    /// plus the trial-outcome instruments.
    pub metrics: MetricsSheet,
    /// §5 failure vector for unsuccessful trials (`None` on success).
    pub failure_vector: Option<FailureVector>,
    /// Gauge time-series sampled on the sim-time cadence, present only
    /// when series telemetry was enabled (see [`intang_telemetry::series`]).
    pub series: Option<Box<SeriesSheet>>,
}

/// Assemble and run one HTTP fetch through the full path.
pub fn run_http_trial(spec: &TrialSpec<'_>) -> TrialResult {
    let _s = span(SpanId::Trial);
    let (sim, parts) = build_http_sim(spec);
    finish_http_trial(sim, parts, spec)
}

/// The live handles of an assembled trial (exposed so specialised
/// experiments — hypotheses probes, figures — can reuse the topology).
pub struct TrialParts {
    pub report: Rc<RefCell<intang_apps::http::HttpClientReport>>,
    pub intang: intang_core::IntangHandle,
    pub gfw_handles: Vec<GfwHandle>,
    pub server_addr: Ipv4Addr,
    /// Index of the final (post-censor) link — route dynamics target.
    pub last_link: usize,
    /// Index of the core (pre-censor) link — route dynamics target.
    pub core_link: usize,
}

/// Build the simulation for an HTTP trial without running it.
pub fn build_http_sim(spec: &TrialSpec<'_>) -> (Simulation, TrialParts) {
    let vp = spec.vp;
    let site = spec.site;
    let mut sim = Simulation::new(spec.seed);

    let target = if spec.keyword { "/search?q=ultrasurf" } else { "/index.html" };
    let request = encoded_request(target, &site.name);
    let (client_driver, report) = HttpClientDriver::with_encoded(site.addr, 80, request);

    // [0] client host.
    let (_cidx, chandle) = add_host(
        &mut sim,
        "client",
        vp.addr,
        intang_tcpstack::StackProfile::linux_4_4(),
        Box::new(client_driver),
        Direction::ToServer,
    );
    if let Some(base) = spec.isn_base {
        chandle.with_tcp(|t| t.set_isn_base(base));
    }

    // [1] INTANG shim, directly on the client machine.
    sim.add_link(Link::new(Duration::from_micros(50), 0));
    let mut cfg = IntangConfig {
        strategy: spec.strategy,
        redundancy: spec.redundancy,
        delta: spec.delta,
        // §7.1: outside China the censor sits within a few hops of the
        // server; TTL scoping cannot win, so INTANG leans on the other
        // Table 5 discrepancies there.
        prefer_ttl: !vp.abroad,
        ..IntangConfig::default()
    };
    if spec.strategy == Some(StrategyKind::NoStrategy) {
        // The baseline also skips measurement probes.
        cfg.measure_hops = false;
    }
    if let Some(plan) = &spec.faults {
        cfg.robustness = Some(RobustnessConfig {
            reprotect_syn: plan.client.reprotect_syn,
            max_reprotects: plan.client.max_reprotects,
            backoff: plan.client.backoff,
            reprobe_on_reset: plan.client.reprobe_on_reset,
        });
    }
    let (intang_el, intang) = match &spec.history {
        Some(h) => IntangElement::with_history(vp.addr, cfg, h.clone()),
        None => IntangElement::new(vp.addr, cfg),
    };
    sim.add_element(Box::new(intang_el));

    // Client-side middleboxes (Table 2 profile).
    let access_link = sim.link_count();
    sim.add_link(Link::new(Duration::from_millis(1), vp.access_hops).with_router_base(Ipv4Addr::new(172, 16, 1, 0)));
    sim.add_element(Box::new(FragmentHandler::new(vp.profile.label(), vp.profile.fragment_mode())));
    sim.add_link(Link::new(Duration::from_micros(100), 0));
    sim.add_element(Box::new(FieldFilter::new(vp.profile.label(), vp.profile.filter_spec())));

    // Unattributed mid-path filter (no-flag droppers, §3.4 calibration).
    let core_link = sim.link_count();
    sim.add_link(
        Link::new(Duration::from_millis(site.latency_ms / 2), site.core_hops)
            .with_loss(site.loss)
            .with_router_base(Ipv4Addr::new(172, 16, 2, 0)),
    );
    let mut midpath_spec = if site.path_drops_noflag {
        FilterSpec {
            drop_no_flag: 1.0,
            ..FilterSpec::default()
        }
    } else {
        FilterSpec::passes_everything()
    };
    if let Some(p) = spec.faults.as_ref().and_then(|plan| plan.midpath_drop_no_flag) {
        // Profile perturbation: an unattributed hop starts eating flagless
        // segments mid-trial-set (Table 2's "varies by path" rows).
        midpath_spec.drop_no_flag = midpath_spec.drop_no_flag.max(p);
    }
    sim.add_element(Box::new(FieldFilter::new("midpath", midpath_spec)));

    // The censor tap(s) at the border.
    let mut gfw_handles = Vec::new();
    let mut first = true;
    for mut gcfg in site.gfw_configs() {
        gcfg.tor_filter = vp.tor_filtered;
        if let Some(plan) = &spec.faults {
            gcfg.chaos_rst_inject_prob = plan.censor.rst_inject_prob;
            gcfg.chaos_blacklist_jitter = plan.censor.blacklist_jitter;
            gcfg.chaos_device_flap_prob = plan.censor.device_flap_prob;
        }
        if !first {
            sim.add_link(Link::new(Duration::from_micros(10), 0));
        } else {
            sim.add_link(Link::new(Duration::from_micros(200), 0));
            first = false;
        }
        let (el, handle) = GfwElement::labeled(gcfg, "GFW");
        sim.add_element(Box::new(el));
        gfw_handles.push(handle);
    }

    // Server side: an optional middlebox, then the server host. A strict
    // sequence-checking firewall sits one hop out (rare); a conntrack
    // firewall sits two hops out (common) — both §3.4 Failure-1 sources.
    let last_link;
    if site.server_seqfw && site.server_hops >= 2 {
        sim.add_link(
            Link::new(Duration::from_millis(site.latency_ms / 2), site.server_hops - 1)
                .with_loss(site.loss)
                .with_router_base(Ipv4Addr::new(172, 16, 3, 0)),
        );
        let mut fw = SeqStrictFirewall::new("server-fw");
        fw.validate_checksum = site.seqfw_validates_checksum;
        sim.add_element(Box::new(fw));
        last_link = sim.link_count();
        sim.add_link(Link::new(Duration::from_micros(300), 1).with_router_base(Ipv4Addr::new(172, 16, 4, 0)));
    } else if site.server_conntrack && site.server_hops >= 2 {
        // TTL-scoped insertions normally expire one router short of the
        // server, i.e. just before this box; a one-hop route shrink exposes
        // it and a traversing insertion RST silently kills the flow.
        last_link = sim.link_count();
        sim.add_link(
            Link::new(Duration::from_millis(site.latency_ms / 2), site.server_hops - 1)
                .with_loss(site.loss)
                .with_router_base(Ipv4Addr::new(172, 16, 3, 0)),
        );
        sim.add_element(Box::new(StatefulFirewall::new("server-conntrack")));
        sim.add_link(Link::new(Duration::from_micros(300), 1).with_router_base(Ipv4Addr::new(172, 16, 4, 0)));
    } else {
        last_link = sim.link_count();
        sim.add_link(
            Link::new(Duration::from_millis(site.latency_ms / 2), site.server_hops)
                .with_loss(site.loss)
                .with_router_base(Ipv4Addr::new(172, 16, 3, 0)),
        );
    }
    let server_driver = if site.flaky_server {
        // A flaky site: TCP answers, the application never does (§3.4's
        // background Failure 1 noise).
        HttpServerDriver::new(80).unresponsive()
    } else {
        HttpServerDriver::new(80)
    };
    let (_sidx, shandle) = add_host(
        &mut sim,
        "server",
        site.addr,
        site.server_profile,
        Box::new(server_driver),
        Direction::ToClient,
    );
    shandle.with_tcp(|t| t.listen(80));
    shandle.with_tcp(|t| t.set_ip_overlap(site.server_ip_overlap));
    if let Some(base) = spec.isn_base {
        shandle.with_tcp(|t| t.set_isn_base(base));
    }
    listen(&shandle, 80);

    if let Some(plan) = &spec.faults {
        sim.link_mut(access_link).faults = plan.access.clone();
        apply_link_faults(&mut sim, core_link, &plan.core);
        apply_link_faults(&mut sim, last_link, &plan.server);
    }

    let parts = TrialParts {
        report,
        intang,
        gfw_handles,
        server_addr: site.addr,
        last_link,
        core_link,
    };
    (sim, parts)
}

/// Install a plan's faults on one link. The burst channel *replaces* the
/// link's independent loss draw, so the link's own residual loss is folded
/// into the good-state loss rate — faults can only add loss, never mask it.
fn apply_link_faults(sim: &mut Simulation, idx: usize, faults: &intang_netsim::LinkFaults) {
    let link = sim.link_mut(idx);
    let mut f = faults.clone();
    if let Some(ge) = f.burst.as_mut() {
        ge.loss_good = ge.loss_good.max(link.loss);
    }
    link.faults = f;
}

fn finish_http_trial(mut sim: Simulation, parts: TrialParts, spec: &TrialSpec<'_>) -> TrialResult {
    let (events, fault_flaps) = drive_http_trial(&mut sim, &parts, spec);
    let mut result = classify(&sim, &parts, spec);
    result.series = sim.take_series();
    result.events = events;
    result.metrics.observe(HistId::TrialEvents, events);
    if fault_flaps > 0 {
        result.metrics.add(Counter::FaultRouteFlaps, fault_flaps);
    }
    result
}

/// Run an assembled trial to its horizon without classifying, returning
/// `(events, fault_route_flaps)`. Exposed so the simcheck shrinker can
/// drive a traced replay and still hold the simulation (and its trace)
/// afterwards.
pub fn drive_http_trial(sim: &mut Simulation, parts: &TrialParts, spec: &TrialSpec<'_>) -> (u64, u64) {
    // Route dynamics (§3.4): between INTANG's hop measurement (~150 ms)
    // and the insertion packets (~300 ms) the route may change by a few
    // hops, on either side of the censor. A post-censor shrink makes the
    // scoped TTL reach the server (Failure 1); a pre-censor growth makes
    // it die before the censor (Failure 2).
    let mut events = 0;
    let route_changes = sim.rng.chance(spec.route_change_prob);
    if route_changes {
        // min() keeps a shrunken horizon a true truncation of the full
        // trial (a no-op at the default horizon).
        events += sim.run_until(Instant(160_000.min(spec.horizon.0)));
        let post_side = sim.rng.chance(0.6);
        // Post-censor changes stay small (1-2 hops): enough to expose a
        // server-side middlebox to TTL-scoped insertions without reaching
        // the server itself. Pre-censor growth can be larger and pushes the
        // censor out of the insertion's reach (Failure 2).
        let delta = if post_side { 1 } else { 1 + (sim.rng.next_u32() % 3) as u8 };
        let shrink = sim.rng.chance(if post_side { 0.65 } else { 0.5 });
        let idx = if post_side { parts.last_link } else { parts.core_link };
        let link = sim.link_mut(idx);
        link.hops = if shrink {
            link.hops.saturating_sub(delta).max(1)
        } else {
            link.hops + delta
        };
    }
    // Planned route flaps (fault layer): each one moves a link's hop count
    // mid-trial and tells INTANG the route changed so it re-probes TTL
    // distance on the next flow. The natural route-change draw above keeps
    // its exact RNG sequence; plan flaps ride on top.
    let mut fault_flaps = 0u64;
    if let Some(plan) = &spec.faults {
        for flap in &plan.route_flaps {
            events += sim.run_until(Instant(flap.at.0.min(spec.horizon.0)));
            let idx = if flap.pre_censor { parts.core_link } else { parts.last_link };
            let link = sim.link_mut(idx);
            link.hops = if flap.shrink {
                link.hops.saturating_sub(flap.delta).max(1)
            } else {
                link.hops + flap.delta
            };
            parts.intang.notify_route_change();
            fault_flaps += 1;
        }
    }
    events += sim.run_until(spec.horizon);
    (events, fault_flaps)
}

/// Classify a finished trial (public for the simcheck shrinker's traced
/// replays; normal callers go through [`run_http_trial`]).
pub fn classify(sim: &Simulation, parts: &TrialParts, spec: &TrialSpec<'_>) -> TrialResult {
    let report = parts.report.borrow();
    let stats = parts.intang.stats();
    let resets = stats.type1_resets_seen + stats.type2_resets_seen;
    let got_response = report.response.is_some();
    let outcome = if resets > 0 || report.reset {
        Outcome::Failure2
    } else if got_response {
        Outcome::Success
    } else {
        Outcome::Failure1
    };
    let detections: usize = parts.gfw_handles.iter().map(|h| h.detections().len()).sum();

    // Pull the per-element counters into one sheet, then stamp the
    // trial-level instruments on top.
    let mut metrics = MetricsSheet::new();
    sim.export_metrics(&mut metrics);
    // Tag the trial with the profile of every censor device on the path
    // (recorded here, not by the element: the metropolis splits one
    // logical device across event domains, so the element can't count
    // devices without breaking serial/parallel identity).
    for h in &parts.gfw_handles {
        metrics.inc(h.profile_tag().device_counter());
    }
    metrics.inc(Counter::TrialsRun);
    let (outcome_counter, outcome_col) = match outcome {
        Outcome::Success => (Counter::TrialSuccess, OUTCOME_SUCCESS),
        Outcome::Failure1 => (Counter::TrialFailure1, OUTCOME_FAILURE1),
        Outcome::Failure2 => (Counter::TrialFailure2, OUTCOME_FAILURE2),
    };
    metrics.inc(outcome_counter);
    let slot = spec.strategy.map_or(ADAPTIVE_SLOT, |k| usize::from(k.id().0));
    metrics.record_strategy_outcome(slot, outcome_col);
    metrics.observe(HistId::TrialResetsSeen, resets);
    let dpi_bytes = metrics.counter(Counter::GfwDpiBytesScanned);
    metrics.observe(HistId::TrialDpiBytes, dpi_bytes);
    let failure_vector = intang_telemetry::classify(outcome.telemetry(), &TrialEvidence::from_sheet(&metrics));

    TrialResult {
        outcome,
        response_status: report.response.as_ref().map(|r| r.status),
        resets_seen: resets,
        gfw_detections: detections,
        // Fixed strategy, or None when the adaptive engine chose per-flow
        // (its choice is visible via the shared History).
        strategy_used: spec.strategy,
        events: 0,
        metrics,
        failure_vector,
        series: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn scenario() -> Scenario {
        Scenario::smoke(11)
    }

    /// A site whose path carries only the evolved censor and is middlebox-benign.
    fn benign_site(s: &Scenario) -> Website {
        let mut site = s.websites[0].clone();
        site.old_device = false;
        site.evolved_device = true;
        site.server_seqfw = false;
        site.path_drops_noflag = false;
        site.loss = 0.0;
        site.rst_resync_prob = 0.2;
        site
    }

    #[test]
    fn no_strategy_with_keyword_is_censored() {
        let s = scenario();
        let site = benign_site(&s);
        let mut failures2 = 0;
        for seed in 0..10 {
            let spec = TrialSpec::new(&s.vantage_points[0], &site, Some(StrategyKind::NoStrategy), true, 1000 + seed);
            let r = run_http_trial(&spec);
            if r.outcome == Outcome::Failure2 {
                failures2 += 1;
                assert!(r.gfw_detections > 0);
            }
        }
        assert!(failures2 >= 8, "censorship bites almost every time, got {failures2}/10");
    }

    #[test]
    fn no_strategy_without_keyword_succeeds() {
        let s = scenario();
        let site = benign_site(&s);
        let spec = TrialSpec::new(&s.vantage_points[0], &site, Some(StrategyKind::NoStrategy), false, 77);
        let r = run_http_trial(&spec);
        assert_eq!(r.outcome, Outcome::Success, "{r:?}");
        assert_eq!(r.response_status, Some(200));
        assert_eq!(r.gfw_detections, 0);
    }

    #[test]
    fn improved_teardown_evades_evolved_censor() {
        let s = scenario();
        let site = benign_site(&s);
        let mut successes = 0;
        for seed in 0..10 {
            let mut spec = TrialSpec::new(&s.vantage_points[0], &site, Some(StrategyKind::ImprovedTeardown), true, 2000 + seed);
            spec.route_change_prob = 0.0;
            let r = run_http_trial(&spec);
            if r.outcome == Outcome::Success {
                successes += 1;
            }
        }
        assert!(successes >= 9, "improved teardown must evade reliably, got {successes}/10");
    }

    #[test]
    fn combined_strategies_beat_old_and_evolved_devices_together() {
        let s = scenario();
        let mut site = benign_site(&s);
        site.old_device = true; // both generations on path
        for kind in [StrategyKind::TcbCreationResyncDesync, StrategyKind::TeardownTcbReversal] {
            let mut successes = 0;
            for seed in 0..10 {
                let mut spec = TrialSpec::new(&s.vantage_points[0], &site, Some(kind), true, 3000 + seed);
                spec.route_change_prob = 0.0;
                let r = run_http_trial(&spec);
                if r.outcome == Outcome::Success {
                    successes += 1;
                }
            }
            assert!(successes >= 8, "{kind:?} got {successes}/10");
        }
    }

    #[test]
    fn tcb_creation_fails_against_evolved_but_beats_old() {
        let s = scenario();
        let mut evolved = benign_site(&s);
        evolved.rst_resync_prob = 0.2;
        let mut old_site = benign_site(&s);
        old_site.old_device = true;
        old_site.evolved_device = false;

        let kind = StrategyKind::TcbCreationSyn(intang_core::Discrepancy::SmallTtl);
        let mut evolved_f2 = 0;
        let mut old_success = 0;
        for seed in 0..10 {
            let mut spec = TrialSpec::new(&s.vantage_points[0], &evolved, Some(kind), true, 4000 + seed);
            spec.route_change_prob = 0.0;
            if run_http_trial(&spec).outcome == Outcome::Failure2 {
                evolved_f2 += 1;
            }
            let mut spec = TrialSpec::new(&s.vantage_points[0], &old_site, Some(kind), true, 5000 + seed);
            spec.route_change_prob = 0.0;
            if run_http_trial(&spec).outcome == Outcome::Success {
                old_success += 1;
            }
        }
        assert!(evolved_f2 >= 8, "evolved model resyncs on the SYN/ACK: {evolved_f2}/10");
        assert!(old_success >= 8, "prior model is fooled by the fake ISN: {old_success}/10");
    }

    #[test]
    fn aliyun_cannot_emit_fragments_failure1() {
        // Table 1: out-of-order IP fragments from Aliyun ⇒ Failure 1.
        let s = scenario();
        let site = benign_site(&s);
        let aliyun = &s.vantage_points[0];
        assert_eq!(aliyun.profile, intang_middlebox::ClientSideProfile::Aliyun);
        let mut spec = TrialSpec::new(aliyun, &site, Some(StrategyKind::OutOfOrderIpFrag), true, 60);
        spec.route_change_prob = 0.0;
        let r = run_http_trial(&spec);
        assert_eq!(r.outcome, Outcome::Failure1, "{r:?}");
    }
}
