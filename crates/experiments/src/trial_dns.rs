//! DNS censorship-evasion trials (Table 6 and §2.1 DNS poisoning).
//!
//! The client application issues a plain UDP DNS query for a censored
//! domain. Without INTANG the censor injects a forged answer (poisoning);
//! with INTANG the query is converted to DNS-over-TCP toward a clean
//! resolver, protected by the improved TCB-teardown strategy.

use crate::scenario::VantagePoint;
use intang_apps::dnsapp::{DnsClientReport, DnsServerDriver, DnsUdpClientDriver, Zone};
use intang_apps::host::add_host;
use intang_core::{IntangConfig, IntangElement, StrategyKind};
use intang_gfw::device::POISON_ADDR;
use intang_gfw::{GfwConfig, GfwElement};
use intang_middlebox::{FieldFilter, FragmentHandler, StatefulFirewall};
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_tcpstack::StackProfile;
use std::net::Ipv4Addr;

/// The two Dyn resolvers of Table 6.
pub const DYN1: Ipv4Addr = Ipv4Addr::new(216, 146, 35, 35);
pub const DYN2: Ipv4Addr = Ipv4Addr::new(216, 146, 36, 36);
/// The censored domain's real address.
pub const REAL_ADDR: Ipv4Addr = Ipv4Addr::new(162, 125, 2, 5);
/// The censored domain queried in Table 6.
pub const CENSORED_DOMAIN: &str = "www.dropbox.com";

/// Outcome of one DNS lookup trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsOutcome {
    /// Correct answer obtained.
    Resolved,
    /// Poisoned: the forged address came back (first).
    Poisoned,
    /// Reset or timed out with no usable answer.
    Failed,
}

pub struct DnsTrialSpec<'a> {
    pub vp: &'a VantagePoint,
    pub resolver: Ipv4Addr,
    /// Use INTANG's DNS-over-TCP forwarder with the improved teardown
    /// strategy. Without it the raw UDP query faces the poisoner.
    pub use_intang: bool,
    pub seed: u64,
    /// Probability that a connection-tracking NAT interferes on this path
    /// (the Tianjin anomaly of Table 6 — the paper reports the mechanism
    /// as unexplained; we model a home-gateway conntrack box).
    pub nat_prob: f64,
}

pub fn run_dns_trial(spec: &DnsTrialSpec<'_>) -> DnsOutcome {
    let mut sim = Simulation::new(spec.seed);
    let vp = spec.vp;

    // Client queries its "configured" resolver over UDP; INTANG reroutes.
    let (driver, report) = DnsUdpClientDriver::new(spec.resolver, CENSORED_DOMAIN);
    add_host(
        &mut sim,
        "client",
        vp.addr,
        StackProfile::linux_4_4(),
        Box::new(driver),
        Direction::ToServer,
    );

    sim.add_link(Link::new(Duration::from_micros(50), 0));
    let cfg = IntangConfig {
        strategy: if spec.use_intang {
            Some(StrategyKind::ImprovedTeardown)
        } else {
            Some(StrategyKind::NoStrategy)
        },
        dns_forward: if spec.use_intang { Some(spec.resolver) } else { None },
        measure_hops: spec.use_intang,
        ..IntangConfig::default()
    };
    let (intang_el, _intang) = IntangElement::new(vp.addr, cfg);
    sim.add_element(Box::new(intang_el));

    // Client-side middleboxes; Tianjin's home gateway may run connection
    // tracking that an insertion RST desynchronizes.
    sim.add_link(Link::new(Duration::from_millis(1), vp.access_hops));
    sim.add_element(Box::new(FragmentHandler::new(vp.profile.label(), vp.profile.fragment_mode())));
    sim.add_link(Link::new(Duration::from_micros(100), 0));
    sim.add_element(Box::new(FieldFilter::new(vp.profile.label(), vp.profile.filter_spec())));
    let nat_engaged = {
        let p = spec.nat_prob;
        sim.rng.chance(p)
    };
    sim.add_link(Link::new(Duration::from_micros(100), 0));
    if nat_engaged {
        sim.add_element(Box::new(StatefulFirewall::new("home-nat")));
    } else {
        sim.add_element(Box::new(intang_netsim::element::PassThrough::new("no-nat")));
    }

    // Censor: DNS poisoning + TCP resets.
    sim.add_link(Link::new(Duration::from_millis(8), 6).with_loss(0.004));
    let (gfw, _handle) = GfwElement::new(GfwConfig::evolved());
    sim.add_element(Box::new(gfw));

    // The clean resolver, answering over both UDP and TCP.
    sim.add_link(Link::new(Duration::from_millis(30), 8).with_loss(0.004));
    let zone = Zone::new(Ipv4Addr::new(198, 18, 0, 1)).with(CENSORED_DOMAIN, REAL_ADDR);
    let (_i, shandle) = add_host(
        &mut sim,
        "resolver",
        spec.resolver,
        StackProfile::linux_4_4(),
        Box::new(DnsServerDriver::new(zone)),
        Direction::ToClient,
    );
    shandle.with_tcp(|t| t.listen(53));

    sim.run_until(Instant(20_000_000));
    let outcome = classify_dns(&report.borrow());
    outcome
}

fn classify_dns(rep: &DnsClientReport) -> DnsOutcome {
    match rep.answer {
        Some(a) if a == REAL_ADDR => DnsOutcome::Resolved,
        Some(a) if a == POISON_ADDR => DnsOutcome::Poisoned,
        Some(_) => DnsOutcome::Resolved, // resolver default (uncensored name)
        None => DnsOutcome::Failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn udp_query_is_poisoned_without_intang() {
        let s = Scenario::paper_inside(5);
        let vp = &s.vantage_points[0];
        let mut poisoned = 0;
        for seed in 0..6 {
            let spec = DnsTrialSpec {
                vp,
                resolver: DYN1,
                use_intang: false,
                seed: 100 + seed,
                nat_prob: 0.0,
            };
            if run_dns_trial(&spec) == DnsOutcome::Poisoned {
                poisoned += 1;
            }
        }
        assert!(poisoned >= 5, "the injected answer wins the race, got {poisoned}/6");
    }

    #[test]
    fn intang_forwarder_evades_dns_censorship() {
        let s = Scenario::paper_inside(5);
        let vp = &s.vantage_points[0];
        let mut resolved = 0;
        for seed in 0..6 {
            let spec = DnsTrialSpec {
                vp,
                resolver: DYN1,
                use_intang: true,
                seed: 200 + seed,
                nat_prob: 0.0,
            };
            if run_dns_trial(&spec) == DnsOutcome::Resolved {
                resolved += 1;
            }
        }
        assert!(resolved >= 5, "DNS over TCP with evasion resolves, got {resolved}/6");
    }

    #[test]
    fn conntrack_nat_breaks_the_teardown_strategy() {
        let s = Scenario::paper_inside(5);
        let tj = s.vantage_points.iter().find(|v| v.name == "unicom-tj").unwrap();
        let mut failed = 0;
        for seed in 0..6 {
            let spec = DnsTrialSpec {
                vp: tj,
                resolver: DYN1,
                use_intang: true,
                seed: 300 + seed,
                nat_prob: 1.0,
            };
            if run_dns_trial(&spec) == DnsOutcome::Failed {
                failed += 1;
            }
        }
        assert!(failed >= 5, "insertion RST kills the NAT state: {failed}/6 failed");
    }
}
