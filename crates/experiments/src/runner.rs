//! Sweep execution and aggregation.

use crate::scenario::{Scenario, VantagePoint, Website};
use crate::trial::{run_http_trial, Outcome, TrialSpec};
use intang_core::select::History;
use intang_core::StrategyKind;
use std::cell::RefCell;
use std::rc::Rc;

/// Outcome counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate {
    pub success: u32,
    pub failure1: u32,
    pub failure2: u32,
}

impl Aggregate {
    pub fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Success => self.success += 1,
            Outcome::Failure1 => self.failure1 += 1,
            Outcome::Failure2 => self.failure2 += 1,
        }
    }

    pub fn merge(&mut self, other: Aggregate) {
        self.success += other.success;
        self.failure1 += other.failure1;
        self.failure2 += other.failure2;
    }

    pub fn total(&self) -> u32 {
        self.success + self.failure1 + self.failure2
    }

    pub fn success_rate(&self) -> f64 {
        f64::from(self.success) / f64::from(self.total().max(1))
    }

    pub fn failure1_rate(&self) -> f64 {
        f64::from(self.failure1) / f64::from(self.total().max(1))
    }

    pub fn failure2_rate(&self) -> f64 {
        f64::from(self.failure2) / f64::from(self.total().max(1))
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Fixed strategy; None = INTANG adaptive mode (history persists across
    /// the repeated trials toward each site).
    pub strategy: Option<StrategyKind>,
    pub keyword: bool,
    pub trials: u32,
    pub redundancy: u32,
    pub master_seed: u64,
    pub route_change_prob: f64,
}

impl SweepConfig {
    pub fn new(strategy: Option<StrategyKind>, keyword: bool, trials: u32, master_seed: u64) -> SweepConfig {
        SweepConfig { strategy, keyword, trials, redundancy: 3, master_seed, route_change_prob: 0.12 }
    }
}

fn trial_seed(master: u64, vp_idx: usize, site_idx: usize, trial: u32, keyword: bool) -> u64 {
    // SplitMix-style hash for independent streams.
    let mut z = master
        ^ (vp_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (site_idx as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ (u64::from(trial)).wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ u64::from(keyword) << 63;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run `cfg.trials` trials of one (vantage point, site) cell.
pub fn run_cell(vp: &VantagePoint, vp_idx: usize, site: &Website, site_idx: usize, cfg: &SweepConfig) -> Aggregate {
    let mut agg = Aggregate::default();
    // Adaptive mode: one history per (vantage point, site), shared across
    // the repeated trials — this is how INTANG converges (§6).
    let history = if cfg.strategy.is_none() { Some(Rc::new(RefCell::new(History::new()))) } else { None };
    for t in 0..cfg.trials {
        let mut spec = TrialSpec::new(vp, site, cfg.strategy, cfg.keyword, trial_seed(cfg.master_seed, vp_idx, site_idx, t, cfg.keyword));
        spec.redundancy = cfg.redundancy;
        spec.history = history.clone();
        spec.route_change_prob = cfg.route_change_prob;
        agg.add(run_http_trial(&spec).outcome);
    }
    agg
}

/// Per-vantage-point aggregates over all sites (parallel across vantage
/// points).
pub fn sweep(scenario: &Scenario, cfg: &SweepConfig) -> Vec<(String, Aggregate)> {
    let mut out: Vec<(String, Aggregate)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = scenario
            .vantage_points
            .iter()
            .enumerate()
            .map(|(vp_idx, vp)| {
                let cfg = cfg.clone();
                let websites = &scenario.websites;
                scope.spawn(move || {
                    let mut agg = Aggregate::default();
                    for (site_idx, site) in websites.iter().enumerate() {
                        agg.merge(run_cell(vp, vp_idx, site, site_idx, &cfg));
                    }
                    (vp.name.to_string(), agg)
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("sweep thread panicked"));
        }
    });
    out
}

/// Collapse per-vantage-point aggregates into one row.
pub fn overall(rows: &[(String, Aggregate)]) -> Aggregate {
    let mut total = Aggregate::default();
    for (_, a) in rows {
        total.merge(*a);
    }
    total
}

/// Min/max/avg success, failure1, failure2 rates across vantage points —
/// Table 4's presentation.
#[derive(Debug, Clone, Copy)]
pub struct MinMaxAvg {
    pub min: f64,
    pub max: f64,
    pub avg: f64,
}

pub fn min_max_avg(rows: &[(String, Aggregate)], f: impl Fn(&Aggregate) -> f64) -> MinMaxAvg {
    let vals: Vec<f64> = rows.iter().map(|(_, a)| f(a)).collect();
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let avg = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
    MinMaxAvg { min, max, avg }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_arithmetic() {
        let mut a = Aggregate::default();
        a.add(Outcome::Success);
        a.add(Outcome::Success);
        a.add(Outcome::Failure1);
        a.add(Outcome::Failure2);
        assert_eq!(a.total(), 4);
        assert!((a.success_rate() - 0.5).abs() < 1e-9);
        assert!((a.failure1_rate() - 0.25).abs() < 1e-9);
        let mut b = Aggregate::default();
        b.add(Outcome::Failure2);
        a.merge(b);
        assert_eq!(a.failure2, 2);
    }

    #[test]
    fn seeds_are_distinct_across_cells() {
        let mut seeds = vec![
            trial_seed(1, 0, 0, 0, true),
            trial_seed(1, 1, 0, 0, true),
            trial_seed(1, 0, 1, 0, true),
            trial_seed(1, 0, 0, 1, true),
            trial_seed(1, 0, 0, 0, false),
            trial_seed(2, 0, 0, 0, true),
        ];
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), 6);
    }

    #[test]
    fn min_max_avg_works() {
        let rows = vec![
            ("a".to_string(), Aggregate { success: 9, failure1: 1, failure2: 0 }),
            ("b".to_string(), Aggregate { success: 5, failure1: 5, failure2: 0 }),
        ];
        let m = min_max_avg(&rows, Aggregate::success_rate);
        assert!((m.min - 0.5).abs() < 1e-9);
        assert!((m.max - 0.9).abs() < 1e-9);
        assert!((m.avg - 0.7).abs() < 1e-9);
    }
}
