//! Sweep execution and aggregation.
//!
//! Sweeps run on a work-stealing executor: the (vantage point, site) grid
//! is flattened into independent cells, worker threads claim cells through
//! a shared atomic cursor, and results are merged back in cell-index order.
//! Because every cell derives its randomness purely from
//! `(master_seed, vp_idx, site_idx, trial)` and keeps its own adaptive
//! history, the merged output is byte-identical to a serial run at any
//! thread count.

use crate::scenario::{Scenario, VantagePoint, Website};
use crate::trial::{run_http_trial, Outcome, TrialSpec};
use intang_core::select::History;
use intang_core::StrategyKind;
use intang_faults::{FaultConfig, FaultPlan};
use intang_telemetry::{span, FailureVector, MetricsSheet, OrderedFold, SeriesSheet, SpanId, SpanSheet};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Aggregate {
    pub success: u32,
    pub failure1: u32,
    pub failure2: u32,
}

impl Aggregate {
    pub fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Success => self.success += 1,
            Outcome::Failure1 => self.failure1 += 1,
            Outcome::Failure2 => self.failure2 += 1,
        }
    }

    pub fn merge(&mut self, other: Aggregate) {
        self.success += other.success;
        self.failure1 += other.failure1;
        self.failure2 += other.failure2;
    }

    pub fn total(&self) -> u32 {
        self.success + self.failure1 + self.failure2
    }

    pub fn success_rate(&self) -> f64 {
        f64::from(self.success) / f64::from(self.total().max(1))
    }

    pub fn failure1_rate(&self) -> f64 {
        f64::from(self.failure1) / f64::from(self.total().max(1))
    }

    pub fn failure2_rate(&self) -> f64 {
        f64::from(self.failure2) / f64::from(self.total().max(1))
    }
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Fixed strategy; None = INTANG adaptive mode (history persists across
    /// the repeated trials toward each site).
    pub strategy: Option<StrategyKind>,
    pub keyword: bool,
    pub trials: u32,
    pub redundancy: u32,
    pub master_seed: u64,
    pub route_change_prob: f64,
    /// Fault-injection configuration; [`FaultConfig::off`] (the default)
    /// leaves every trial byte-identical to a faultless build.
    pub faults: FaultConfig,
    /// Enable the runtime invariant layer (`intang-simcheck`) for this
    /// sweep's worker threads, as if `INTANG_SIMCHECK=1` were set. Checks
    /// are read-only, so results stay byte-identical either way; a
    /// violation triggers the minimal-repro shrinker.
    pub simcheck: bool,
    /// Live console for this sweep (see [`crate::progress`]); workers
    /// report each finished cell. `None` (the default) is silent.
    pub progress: Option<std::sync::Arc<crate::progress::Progress>>,
}

impl SweepConfig {
    pub fn new(strategy: Option<StrategyKind>, keyword: bool, trials: u32, master_seed: u64) -> SweepConfig {
        SweepConfig {
            strategy,
            keyword,
            trials,
            redundancy: 3,
            master_seed,
            route_change_prob: 0.12,
            faults: FaultConfig::off(),
            simcheck: false,
            progress: None,
        }
    }
}

fn trial_seed(master: u64, vp_idx: usize, site_idx: usize, trial: u32, keyword: bool) -> u64 {
    // SplitMix-style hash for independent streams.
    let mut z = master
        ^ (vp_idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (site_idx as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9)
        ^ (u64::from(trial)).wrapping_mul(0x94d0_49bb_1331_11eb)
        ^ u64::from(keyword) << 63;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One failed trial's identity and its §5 classification — the payload of
/// a JSONL `diagnosis` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialDiagnosis {
    pub vp: String,
    pub site: String,
    /// Trial index within its cell.
    pub trial: u32,
    pub seed: u64,
    pub outcome: Outcome,
    pub vector: FailureVector,
    pub resets_seen: u64,
}

/// Everything one (vantage point, site) cell produces: outcome counts,
/// events processed, the merged metrics sheet, and one diagnosis per
/// failed trial (in trial order).
#[derive(Debug, Clone)]
pub struct CellRun {
    pub agg: Aggregate,
    pub events: u64,
    pub metrics: MetricsSheet,
    pub diagnoses: Vec<TrialDiagnosis>,
    /// Invariant violations recorded by simcheck across the cell's trials
    /// (0 when checking is disabled — and, with correct code, when it's on).
    pub violations: u64,
    /// The cell's trials' gauge time-series merged in trial order (`None`
    /// unless series telemetry was enabled).
    pub series: Option<Box<SeriesSheet>>,
}

/// Run `cfg.trials` trials of one (vantage point, site) cell.
pub fn run_cell(vp: &VantagePoint, vp_idx: usize, site: &Website, site_idx: usize, cfg: &SweepConfig) -> Aggregate {
    run_cell_counted(vp, vp_idx, site, site_idx, cfg).0
}

/// As [`run_cell`], additionally returning the simulation events processed
/// (the sweep executor's throughput metric).
pub fn run_cell_counted(vp: &VantagePoint, vp_idx: usize, site: &Website, site_idx: usize, cfg: &SweepConfig) -> (Aggregate, u64) {
    let cell = run_cell_telemetry(vp, vp_idx, site, site_idx, cfg);
    (cell.agg, cell.events)
}

/// As [`run_cell_counted`] with the full telemetry: the cell's merged
/// [`MetricsSheet`] and a [`TrialDiagnosis`] for every unsuccessful trial.
pub fn run_cell_telemetry(vp: &VantagePoint, vp_idx: usize, site: &Website, site_idx: usize, cfg: &SweepConfig) -> CellRun {
    let mut agg = Aggregate::default();
    let mut events = 0u64;
    let mut metrics = MetricsSheet::new();
    let mut diagnoses = Vec::new();
    let mut violations = 0u64;
    let mut series: Option<Box<SeriesSheet>> = None;
    // Thread-local simcheck override: must be in place before any
    // Simulation is constructed (hot paths cache the flag). Restored on
    // the way out so the worker thread is reusable.
    let prev_simcheck = cfg.simcheck.then(|| intang_simcheck::set_thread(Some(true)));
    let sc = cfg.simcheck || intang_simcheck::enabled();
    // Adaptive mode: one history per (vantage point, site), shared across
    // the repeated trials — this is how INTANG converges (§6).
    let history = if cfg.strategy.is_none() {
        Some(Rc::new(RefCell::new(History::new())))
    } else {
        None
    };
    for t in 0..cfg.trials {
        let seed = trial_seed(cfg.master_seed, vp_idx, site_idx, t, cfg.keyword);
        let mut spec = TrialSpec::new(vp, site, cfg.strategy, cfg.keyword, seed);
        spec.redundancy = cfg.redundancy;
        spec.history = history.clone();
        spec.route_change_prob = cfg.route_change_prob;
        spec.faults = {
            let _s = span(SpanId::FaultDerive);
            FaultPlan::derive(&cfg.faults, seed)
        };
        if sc {
            intang_simcheck::begin_trial(seed);
        }
        let r = run_http_trial(&spec);
        if sc {
            let total = intang_simcheck::violation_total();
            let vs = intang_simcheck::take_violations();
            if !vs.is_empty() {
                // Shrink the first violating trial of the cell only — one
                // artifact per cell is enough to debug from, and the
                // shrinker's replays are not free.
                if violations == 0 {
                    let input = crate::simcheck::ShrinkInput {
                        vp,
                        site,
                        strategy: cfg.strategy,
                        keyword: cfg.keyword,
                        seed,
                        redundancy: cfg.redundancy,
                        route_change_prob: cfg.route_change_prob,
                        faults: spec.faults.clone(),
                    };
                    let report = crate::simcheck::shrink(&input, &vs, &crate::simcheck::artifact_dir());
                    if let Some(path) = &report.artifact {
                        eprintln!(
                            "simcheck: {} violation(s) in trial seed {seed:#x}; repro written to {}",
                            total,
                            path.display()
                        );
                    }
                }
                violations += total;
            }
        }
        agg.add(r.outcome);
        events += r.events;
        metrics.merge(&r.metrics);
        if let Some(ts) = r.series {
            match &mut series {
                Some(s) => s.merge(&ts),
                None => series = Some(ts),
            }
        }
        if let Some(vector) = r.failure_vector {
            diagnoses.push(TrialDiagnosis {
                vp: vp.name.to_string(),
                site: site.name.to_string(),
                trial: t,
                seed,
                outcome: r.outcome,
                vector,
                resets_seen: r.resets_seen,
            });
        }
    }
    if let Some(prev) = prev_simcheck {
        intang_simcheck::set_thread(prev);
    }
    if violations > 0 {
        // Only stamped when non-zero so a clean simcheck-enabled sweep's
        // metrics stay byte-identical to a disabled one.
        metrics.add(intang_telemetry::Counter::SimcheckViolations, violations);
    }
    CellRun {
        agg,
        events,
        metrics,
        diagnoses,
        violations,
        series,
    }
}

/// Worker count for [`sweep`]: the `INTANG_THREADS` environment variable
/// when set to a positive integer, else the machine's available
/// parallelism.
pub fn worker_count() -> usize {
    match std::env::var("INTANG_THREADS").ok().and_then(|s| s.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
    }
}

/// One worker's executor statistics for a sweep, in worker-spawn order.
/// All wall-clock — diagnostics only (varies run to run), never part of
/// the deterministic merge.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Wall-clock spent inside the claim-run-merge loop. A worker much
    /// below the max was starved or finished the tail early.
    pub busy: std::time::Duration,
    /// Wall-clock spent waiting to acquire the shared merge mutex —
    /// direct evidence of merge contention at high worker counts.
    pub merge_wait: std::time::Duration,
    /// Cursor claims attempted (the last claim of each worker overshoots).
    pub steal_attempts: u64,
    /// Claims that found the grid exhausted.
    pub steal_failures: u64,
}

/// A finished sweep: per-vantage-point rows plus executor statistics.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// One row per vantage point, in scenario order.
    pub rows: Vec<(String, Aggregate)>,
    /// Total trials executed.
    pub trials: u64,
    /// Total simulation events processed.
    pub events: u64,
    /// All cells' metrics merged in cell-index order (byte-identical at
    /// any worker count, like `rows`).
    pub metrics: MetricsSheet,
    /// One §5 diagnosis per unsuccessful trial, in cell-index then trial
    /// order.
    pub diagnoses: Vec<TrialDiagnosis>,
    /// Simcheck invariant violations summed over all cells (0 unless
    /// checking was enabled *and* an invariant actually broke).
    pub violations: u64,
    /// Gauge time-series merged in cell-index order (byte-identical at any
    /// worker count, like `metrics`); `None` unless series telemetry was
    /// enabled.
    pub series: Option<Box<SeriesSheet>>,
    /// Per-worker executor statistics, in worker-spawn order.
    pub worker_stats: Vec<WorkerStats>,
    /// Per-worker span-profiler sheets, parallel to `worker_stats` (empty
    /// sheets unless span profiling was enabled).
    pub worker_profiles: Vec<SpanSheet>,
    /// Most cell results the streaming merge ever buffered at once (the
    /// reorder window behind the slowest straggler). A serial sweep pins
    /// this at 1.
    pub merge_high_water: usize,
}

impl SweepRun {
    /// All workers' span profiles merged into one sheet.
    pub fn profile(&self) -> SpanSheet {
        let mut all = SpanSheet::default();
        for p in &self.worker_profiles {
            all.merge(p);
        }
        all
    }
}

/// Per-vantage-point aggregates over all sites.
///
/// Thin wrapper over [`sweep_with_threads`] at [`worker_count`] workers;
/// the result is independent of the worker count.
pub fn sweep(scenario: &Scenario, cfg: &SweepConfig) -> Vec<(String, Aggregate)> {
    sweep_with_threads(scenario, cfg, worker_count()).rows
}

/// The streaming merge's accumulated state: per-VP rows, the one merged
/// metrics sheet, and the flat diagnosis list.
struct SweepAcc {
    rows: Vec<(String, Aggregate)>,
    events: u64,
    metrics: MetricsSheet,
    diagnoses: Vec<TrialDiagnosis>,
    violations: u64,
    series: Option<Box<SeriesSheet>>,
}

/// Run the sweep on `workers` threads claiming (vantage point, site) cells
/// from a shared atomic cursor.
///
/// Cells are independent units of work — each derives its trial seeds
/// purely from `(master_seed, vp_idx, site_idx, trial)` and owns its
/// adaptive history — so stealing order cannot leak into results. Each
/// worker is a *shard*: it owns its thread-local arenas (packet wires,
/// TCP reprs, sim scratch) and a cell's full telemetry, and hands the
/// finished cell to a shared [`OrderedFold`] that folds results in strict
/// cell-index order the moment the in-order prefix reaches them. The fold
/// order — not the retirement order — is what the output depends on, so
/// results are byte-identical to a serial sweep for any `workers >= 1`,
/// while the merge buffers only the reorder window instead of every
/// cell's sheet.
pub fn sweep_with_threads(scenario: &Scenario, cfg: &SweepConfig, workers: usize) -> SweepRun {
    let n_sites = scenario.websites.len();
    let n_cells = scenario.vantage_points.len() * n_sites;
    let cursor = AtomicUsize::new(0);
    let workers = workers.max(1).min(n_cells.max(1));

    let acc = SweepAcc {
        rows: scenario
            .vantage_points
            .iter()
            .map(|vp| (vp.name.to_string(), Aggregate::default()))
            .collect(),
        events: 0,
        metrics: MetricsSheet::new(),
        diagnoses: Vec::new(),
        violations: 0,
        series: None,
    };
    let merge = Mutex::new(OrderedFold::new(acc, move |acc: &mut SweepAcc, i, cell: CellRun| {
        acc.rows[i / n_sites.max(1)].1.merge(cell.agg);
        acc.events += cell.events;
        acc.metrics.merge(&cell.metrics);
        acc.diagnoses.extend(cell.diagnoses);
        acc.violations += cell.violations;
        if let Some(cs) = cell.series {
            match &mut acc.series {
                Some(s) => s.merge(&cs),
                None => acc.series = Some(cs),
            }
        }
    }));

    // The caller's observability overrides are thread-locals; replay them
    // inside every worker so an A/B harness (determinism matrix,
    // bench_sweep, the observability tests) controls the mode of
    // worker-constructed simulations too.
    let batch_override = intang_netsim::batch::thread_override();
    let flight_override = intang_netsim::flight::thread_override();
    let series_override = intang_telemetry::series::thread_override();
    let spans_override = intang_telemetry::spans::thread_override();

    let worker_results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let cfg = &*cfg;
                let merge = &merge;
                scope.spawn(move || {
                    intang_netsim::batch::set_thread(batch_override);
                    intang_netsim::flight::set_thread(flight_override);
                    intang_telemetry::series::set_thread(series_override);
                    intang_telemetry::spans::set_thread(spans_override);
                    let started = std::time::Instant::now();
                    let mut stats = WorkerStats::default();
                    loop {
                        let i = {
                            let _s = span(SpanId::IdleSteal);
                            stats.steal_attempts += 1;
                            cursor.fetch_add(1, Ordering::Relaxed)
                        };
                        if i >= n_cells {
                            stats.steal_failures += 1;
                            break;
                        }
                        let (vp_idx, site_idx) = (i / n_sites, i % n_sites);
                        let cell_started = std::time::Instant::now();
                        let cell = run_cell_telemetry(
                            &scenario.vantage_points[vp_idx],
                            vp_idx,
                            &scenario.websites[site_idx],
                            site_idx,
                            cfg,
                        );
                        let cell_wall = cell_started.elapsed();
                        // Retire the cell immediately: the fold advances as
                        // far as the in-order prefix allows and the cell's
                        // sheet is freed, not parked until the end.
                        let high_water = {
                            let _m = span(SpanId::TelemetryMerge);
                            let wait_started = std::time::Instant::now();
                            let mut guard = merge.lock().expect("merge lock poisoned");
                            stats.merge_wait += wait_started.elapsed();
                            guard.push(i, cell);
                            guard.high_water()
                        };
                        if let Some(p) = &cfg.progress {
                            p.cell_done(cell_wall, high_water);
                        }
                    }
                    stats.busy = started.elapsed();
                    (stats, intang_telemetry::spans::take_thread())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect::<Vec<_>>()
    });

    let (worker_stats, worker_profiles) = worker_results.into_iter().unzip();
    let (acc, merge_high_water) = merge.into_inner().expect("merge lock poisoned").finish();
    let trials = n_cells as u64 * u64::from(cfg.trials);
    SweepRun {
        rows: acc.rows,
        trials,
        events: acc.events,
        metrics: acc.metrics,
        diagnoses: acc.diagnoses,
        violations: acc.violations,
        series: acc.series,
        worker_stats,
        worker_profiles,
        merge_high_water,
    }
}

/// Collapse per-vantage-point aggregates into one row.
pub fn overall(rows: &[(String, Aggregate)]) -> Aggregate {
    let mut total = Aggregate::default();
    for (_, a) in rows {
        total.merge(*a);
    }
    total
}

/// Min/max/avg success, failure1, failure2 rates across vantage points —
/// Table 4's presentation.
#[derive(Debug, Clone, Copy)]
pub struct MinMaxAvg {
    pub min: f64,
    pub max: f64,
    pub avg: f64,
    /// Rows with zero completed trials, excluded from the statistics.
    /// A rate over an empty row is undefined — `Aggregate` clamps it to
    /// 0.0, which would silently drag every average down — so such rows
    /// are surfaced here instead of being folded in.
    pub empty: usize,
}

pub fn min_max_avg(rows: &[(String, Aggregate)], f: impl Fn(&Aggregate) -> f64) -> MinMaxAvg {
    let empty = rows.iter().filter(|(_, a)| a.total() == 0).count();
    let vals: Vec<f64> = rows.iter().filter(|(_, a)| a.total() > 0).map(|(_, a)| f(a)).collect();
    if vals.is_empty() {
        // No populated rows means no rates; report zeros rather than the
        // fold identities (inf/-inf), which would poison downstream tables.
        return MinMaxAvg {
            min: 0.0,
            max: 0.0,
            avg: 0.0,
            empty,
        };
    }
    let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let avg = vals.iter().sum::<f64>() / vals.len() as f64;
    MinMaxAvg { min, max, avg, empty }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_arithmetic() {
        let mut a = Aggregate::default();
        a.add(Outcome::Success);
        a.add(Outcome::Success);
        a.add(Outcome::Failure1);
        a.add(Outcome::Failure2);
        assert_eq!(a.total(), 4);
        assert!((a.success_rate() - 0.5).abs() < 1e-9);
        assert!((a.failure1_rate() - 0.25).abs() < 1e-9);
        let mut b = Aggregate::default();
        b.add(Outcome::Failure2);
        a.merge(b);
        assert_eq!(a.failure2, 2);
    }

    #[test]
    fn seeds_are_distinct_across_cells() {
        let mut seeds = vec![
            trial_seed(1, 0, 0, 0, true),
            trial_seed(1, 1, 0, 0, true),
            trial_seed(1, 0, 1, 0, true),
            trial_seed(1, 0, 0, 1, true),
            trial_seed(1, 0, 0, 0, false),
            trial_seed(2, 0, 0, 0, true),
        ];
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), 6);
    }

    #[test]
    fn min_max_avg_of_empty_rows_is_zeroed() {
        let m = min_max_avg(&[], Aggregate::success_rate);
        assert_eq!(m.min, 0.0);
        assert_eq!(m.max, 0.0);
        assert_eq!(m.avg, 0.0);
        assert_eq!(m.empty, 0);
    }

    #[test]
    fn min_max_avg_surfaces_zero_trial_rows_instead_of_averaging_them() {
        let rows = vec![
            (
                "a".to_string(),
                Aggregate {
                    success: 4,
                    failure1: 0,
                    failure2: 0,
                },
            ),
            ("empty".to_string(), Aggregate::default()),
            (
                "b".to_string(),
                Aggregate {
                    success: 1,
                    failure1: 1,
                    failure2: 0,
                },
            ),
        ];
        let m = min_max_avg(&rows, Aggregate::success_rate);
        // The empty row must not drag min/avg toward its clamped 0.0 rate.
        assert_eq!(m.empty, 1);
        assert!((m.min - 0.5).abs() < 1e-9);
        assert!((m.max - 1.0).abs() < 1e-9);
        assert!((m.avg - 0.75).abs() < 1e-9);

        let all_empty = vec![("x".to_string(), Aggregate::default())];
        let m = min_max_avg(&all_empty, Aggregate::success_rate);
        assert_eq!(m.empty, 1);
        assert_eq!(m.avg, 0.0);
    }

    #[test]
    fn min_max_avg_works() {
        let rows = vec![
            (
                "a".to_string(),
                Aggregate {
                    success: 9,
                    failure1: 1,
                    failure2: 0,
                },
            ),
            (
                "b".to_string(),
                Aggregate {
                    success: 5,
                    failure1: 5,
                    failure2: 0,
                },
            ),
        ];
        let m = min_max_avg(&rows, Aggregate::success_rate);
        assert!((m.min - 0.5).abs() < 1e-9);
        assert!((m.max - 0.9).abs() < 1e-9);
        assert!((m.avg - 0.7).abs() < 1e-9);
    }
}
