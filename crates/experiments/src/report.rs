//! Plain-text table rendering for the experiment binaries.

/// A simple aligned-text table builder.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum::<usize>().saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a rate as the paper does ("90.6%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["Strategy", "Success"]);
        t.row(vec!["no-strategy".into(), pct(0.028)]);
        t.row(vec!["x".into(), pct(0.906)]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("2.8%"));
        assert!(s.contains("90.6%"));
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].starts_with("Strategy"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
