//! # intang-experiments
//!
//! Scenario construction and trial execution for every table and figure in
//! the paper's evaluation:
//!
//! * [`scenario`] — the 11 Chinese vantage points (Table 2 middlebox
//!   profiles, ISPs, Tor-filtering geography) and deterministic synthetic
//!   website populations standing in for the Alexa-derived 77-site /
//!   33-site datasets;
//! * [`trial`] — assembles one client→middleboxes→GFW→server simulation,
//!   runs a fetch, and classifies the outcome with the paper's
//!   Success / Failure 1 / Failure 2 taxonomy (§3.4);
//! * [`runner`] — repeated-trial sweeps with per-strategy aggregation and
//!   min/max/avg across vantage points (Table 4's presentation);
//! * [`report`] — text/markdown table rendering;
//! * [`telemetry`] — JSONL export (`--telemetry` / `INTANG_TELEMETRY`) of
//!   each sweep's merged metrics sheet and per-trial §5 failure diagnoses.
//!
//! The binaries (`table1` … `table6`, `hypotheses`, `figures`, `tor_vpn`,
//! `reset_fingerprint`, `all`) regenerate each artifact.

pub mod args;
pub mod metropolis;
pub mod progress;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod simcheck;
pub mod tap;
pub mod telemetry;
pub mod trial;
pub mod trial_dns;
pub mod trial_tor;

pub use runner::{sweep, Aggregate, SweepConfig};
pub use scenario::{Scenario, VantagePoint, Website};
pub use trial::{run_http_trial, Outcome, TrialSpec};

pub mod exps;
