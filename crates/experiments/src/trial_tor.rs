//! Tor-bridge and VPN trials (§7.3).

use crate::scenario::VantagePoint;
use intang_apps::host::add_host;
use intang_apps::tor::{TorBridgeDriver, TorClientDriver};
use intang_apps::vpn::{VpnClientDriver, VpnServerDriver};
use intang_core::{IntangConfig, IntangElement, StrategyKind};
use intang_gfw::{GfwConfig, GfwElement, GfwHandle};
use intang_middlebox::{FieldFilter, FragmentHandler};
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_tcpstack::StackProfile;
use std::net::Ipv4Addr;

/// A hidden bridge on EC2 (US), as in §7.3.
pub const BRIDGE_ADDR: Ipv4Addr = Ipv4Addr::new(54, 210, 77, 7);
pub const BRIDGE_PORT: u16 = 443;
pub const VPN_ADDR: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 200);

/// What happened to the Tor session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TorOutcome {
    /// Handshake + all cells exchanged; bridge not blocked.
    Working,
    /// The censor blocked the bridge IP (active probing confirmed it).
    IpBlocked,
    /// Connection reset or stalled without an IP block.
    Disrupted,
}

pub struct TorTrialSpec<'a> {
    pub vp: &'a VantagePoint,
    /// Protect the session with INTANG's improved teardown strategy.
    pub use_intang: bool,
    pub seed: u64,
    pub cells: u32,
}

pub fn run_tor_trial(spec: &TorTrialSpec<'_>) -> (TorOutcome, GfwHandle) {
    let vp = spec.vp;
    let mut sim = Simulation::new(spec.seed);

    let (driver, report) = TorClientDriver::new(BRIDGE_ADDR, BRIDGE_PORT, spec.cells);
    add_host(
        &mut sim,
        "tor-client",
        vp.addr,
        StackProfile::linux_4_4(),
        Box::new(driver),
        Direction::ToServer,
    );

    sim.add_link(Link::new(Duration::from_micros(50), 0));
    let cfg = IntangConfig {
        strategy: Some(if spec.use_intang {
            StrategyKind::ImprovedTeardown
        } else {
            StrategyKind::NoStrategy
        }),
        measure_hops: spec.use_intang,
        ..IntangConfig::default()
    };
    let (intang_el, _h) = IntangElement::new(vp.addr, cfg);
    sim.add_element(Box::new(intang_el));

    sim.add_link(Link::new(Duration::from_millis(1), vp.access_hops));
    sim.add_element(Box::new(FragmentHandler::new(vp.profile.label(), vp.profile.fragment_mode())));
    sim.add_link(Link::new(Duration::from_micros(100), 0));
    sim.add_element(Box::new(FieldFilter::new(vp.profile.label(), vp.profile.filter_spec())));

    sim.add_link(Link::new(Duration::from_millis(10), 7).with_loss(0.003));
    let mut gcfg = GfwConfig::evolved();
    gcfg.tor_filter = vp.tor_filtered;
    let (gfw, handle) = GfwElement::new(gcfg);
    sim.add_element(Box::new(gfw));

    // Transpacific haul to the EC2 bridge.
    sim.add_link(Link::new(Duration::from_millis(70), 9).with_loss(0.003));
    let bridge = TorBridgeDriver::new(BRIDGE_PORT);
    let (_i, bh) = add_host(
        &mut sim,
        "bridge",
        BRIDGE_ADDR,
        StackProfile::linux_4_4(),
        Box::new(bridge),
        Direction::ToClient,
    );
    bh.with_tcp(|t| t.listen(BRIDGE_PORT));

    sim.run_until(Instant(60_000_000));
    let rep = report.borrow();
    let outcome = if handle.ip_blocked(BRIDGE_ADDR) {
        TorOutcome::IpBlocked
    } else if rep.handshake_complete && rep.cells_acked >= spec.cells && !rep.reset {
        TorOutcome::Working
    } else {
        TorOutcome::Disrupted
    };
    (outcome, handle)
}

/// VPN trial outcome: did the tunnel come up and stay up?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpnOutcome {
    TunnelUp,
    ResetDuringHandshake,
    Failed,
}

pub struct VpnTrialSpec<'a> {
    pub vp: &'a VantagePoint,
    /// The censor's DPI-reset regime for OpenVPN (on in Nov 2016, later
    /// discontinued — §7.3).
    pub vpn_dpi: bool,
    pub use_intang: bool,
    pub seed: u64,
}

pub fn run_vpn_trial(spec: &VpnTrialSpec<'_>) -> VpnOutcome {
    let vp = spec.vp;
    let mut sim = Simulation::new(spec.seed);

    let (driver, report) = VpnClientDriver::new(VPN_ADDR, 1194, 3);
    add_host(
        &mut sim,
        "vpn-client",
        vp.addr,
        StackProfile::linux_4_4(),
        Box::new(driver),
        Direction::ToServer,
    );

    sim.add_link(Link::new(Duration::from_micros(50), 0));
    let cfg = IntangConfig {
        strategy: Some(if spec.use_intang {
            StrategyKind::ImprovedTeardown
        } else {
            StrategyKind::NoStrategy
        }),
        measure_hops: spec.use_intang,
        ..IntangConfig::default()
    };
    let (intang_el, _h) = IntangElement::new(vp.addr, cfg);
    sim.add_element(Box::new(intang_el));

    sim.add_link(Link::new(Duration::from_millis(2), vp.access_hops));
    let mut gcfg = GfwConfig::evolved();
    gcfg.vpn_dpi = spec.vpn_dpi;
    let (gfw, _handle) = GfwElement::new(gcfg);
    sim.add_element(Box::new(gfw));

    sim.add_link(Link::new(Duration::from_millis(20), 8).with_loss(0.003));
    let (_i, sh) = add_host(
        &mut sim,
        "vpn-server",
        VPN_ADDR,
        StackProfile::linux_4_4(),
        Box::new(VpnServerDriver::new()),
        Direction::ToClient,
    );
    sh.with_tcp(|t| t.listen(1194));

    sim.run_until(Instant(30_000_000));
    let rep = report.borrow();
    if rep.tunnel_up && rep.records_echoed >= 3 && !rep.reset {
        VpnOutcome::TunnelUp
    } else if rep.reset {
        VpnOutcome::ResetDuringHandshake
    } else {
        VpnOutcome::Failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn unfiltered_northern_paths_run_tor_freely() {
        let s = Scenario::paper_inside(9);
        let vp = s.vantage_points.iter().find(|v| !v.tor_filtered).unwrap();
        let (outcome, handle) = run_tor_trial(&TorTrialSpec {
            vp,
            use_intang: false,
            seed: 11,
            cells: 3,
        });
        assert_eq!(outcome, TorOutcome::Working);
        assert_eq!(handle.probes_launched(), 0, "no Tor-filtering devices on this path");
    }

    #[test]
    fn filtered_paths_get_actively_probed_and_ip_blocked() {
        let s = Scenario::paper_inside(9);
        let vp = s.vantage_points.iter().find(|v| v.tor_filtered).unwrap();
        let (outcome, handle) = run_tor_trial(&TorTrialSpec {
            vp,
            use_intang: false,
            seed: 12,
            cells: 3,
        });
        assert_eq!(outcome, TorOutcome::IpBlocked, "probing confirms the bridge and blocks its IP");
        assert!(handle.probes_launched() >= 1);
    }

    #[test]
    fn intang_hides_tor_from_filtered_paths() {
        let s = Scenario::paper_inside(9);
        let vp = s.vantage_points.iter().find(|v| v.tor_filtered).unwrap();
        let (outcome, handle) = run_tor_trial(&TorTrialSpec {
            vp,
            use_intang: true,
            seed: 13,
            cells: 3,
        });
        assert_eq!(outcome, TorOutcome::Working, "teardown blinds the fingerprinter");
        assert_eq!(handle.probes_launched(), 0);
    }

    #[test]
    fn vpn_dpi_regime_resets_unprotected_handshakes() {
        let s = Scenario::paper_inside(9);
        let vp = &s.vantage_points[0];
        assert_eq!(
            run_vpn_trial(&VpnTrialSpec {
                vp,
                vpn_dpi: true,
                use_intang: false,
                seed: 14
            }),
            VpnOutcome::ResetDuringHandshake
        );
        assert_eq!(
            run_vpn_trial(&VpnTrialSpec {
                vp,
                vpn_dpi: true,
                use_intang: true,
                seed: 15
            }),
            VpnOutcome::TunnelUp,
            "INTANG keeps openvpn-over-TCP alive under the 2016 regime"
        );
        assert_eq!(
            run_vpn_trial(&VpnTrialSpec {
                vp,
                vpn_dpi: false,
                use_intang: false,
                seed: 16
            }),
            VpnOutcome::TunnelUp,
            "after the regime change plain VPN works again"
        );
    }
}
