#!/usr/bin/env sh
# Tier-1 CI gate: formatting, lints, build, the full test suite, then
# smoke-test the sweep executor (bench_sweep --quick also verifies that
# parallel aggregates, metrics sheets and diagnoses are byte-identical to
# the serial run, exiting non-zero if not).
set -eu

cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --all-targets
cargo test -q --release --workspace
# Telemetry determinism: parallel metrics/diagnoses must be byte-identical
# to serial, and every failed trial must land in a concrete §5 vector.
cargo test -q --release --test telemetry
# Golden traces: the packet-level mechanism of one canonical trial per
# strategy family, byte-compared against tests/golden/ snapshots.
cargo test -q --release --test golden_traces
cargo run --release -p intang-experiments --bin bench_sweep -- --quick >/dev/null
# Simcheck gate: the same smoke sweep with the runtime invariant checker
# enabled must report zero violations (bench_sweep exits non-zero and
# drops a minimal-repro artifact into .simcheck/ otherwise), and the
# violation-injection suite must show the shrinker producing a
# deterministic repro for a known-bad trial.
INTANG_SIMCHECK=1 cargo run --release -p intang-experiments --bin bench_sweep -- --quick >/dev/null
cargo test -q --release --test simcheck
# Zero-copy substrate invariants: the timing-wheel event queue must pop in
# exactly the reference (time, insertion-seq) order, COW wire buffers must
# never alias writes across clones, the wide-word checksum and DPI
# skip-loop kernels must agree with their scalar references at every
# length/alignment/split, and arena recycling must be observationally
# invisible.
cargo test -q --release --test properties
# Determinism matrix: sweep outputs byte-identical at 1/2/8 workers with
# event batching forced on and off — plus a whole-process A/B with
# batching env-disabled (the cached-flag path bench_sweep itself takes).
cargo test -q --release --test determinism
INTANG_BATCH=0 cargo run --release -p intang-experiments --bin bench_sweep -- --quick >/dev/null
# Kernel microbench smoke: asserts kernel/reference agreement on real
# iterations (a tiny time budget keeps it a compile-and-agree check, not a
# measurement).
INTANG_BENCH_BUDGET_MS=20 cargo bench -q -p intang-bench --bench kernels >/dev/null
# Allocation ceiling: steady-state heap allocations per trial must stay
# under 100 (the shard arenas' reason to exist; the seed was ~307).
INTANG_ALLOC_GATE=100 cargo run --release -p intang-experiments --features alloc-count --bin bench_sweep -- --quick >/dev/null
# Throughput regression gate: serial events/s within 10% of the blessed
# baseline (scripts/bench_smoke_baseline.txt; INTANG_BLESS=1 re-blesses
# after a hardware change; a missing file blesses automatically).
cargo run --release -p intang-experiments --bin bench_sweep -- --smoke
# Observability overhead: with the whole observability stack explicitly
# disabled the same smoke gate must still pass — the dormant span sites,
# gauge hooks and flight checks may not cost measurable throughput.
INTANG_SERIES=0 INTANG_SPANS=0 INTANG_FLIGHT=0 INTANG_PROGRESS=0 \
    cargo run --release -p intang-experiments --bin bench_sweep -- --smoke
# Folded-stack export smoke: the instrumented pass must produce a
# non-empty profile where every line parses as `stack<space>count`.
folded="${TMPDIR:-/tmp}/ci_profile.folded"
cargo run --release -p intang-experiments --bin bench_sweep -- --quick --profile-folded "$folded" >/dev/null
test -s "$folded" || { echo "ci: FAIL: folded profile is empty" >&2; exit 1; }
awk 'NF < 2 || $NF !~ /^[0-9]+$/ { print "ci: FAIL: bad folded line: " $0; bad = 1 } END { exit bad }' "$folded"
rm -f "$folded"
# Fault layer smoke: degradation matrix at all intensities; the 0.00 row
# doubles as a no-op check for the fault plumbing.
cargo run --release -p intang-experiments --bin fault_matrix -- --smoke >/dev/null
# Metropolis smoke: a 1k-flow shared world with the invariant checker on
# must finish with zero simcheck violations, zero per-flow ordering
# regressions, identical 1/2/8-worker shard aggregation, and peak RSS
# under the ceiling (the binary reads VmHWM and exits non-zero past it).
# Every --smoke also runs a parallel leg (multi-domain, 2 workers)
# byte-compared against its serial reference.
INTANG_SIMCHECK=1 INTANG_METRO_RSS_MB=128 \
    cargo run --release -p intang-experiments --bin metropolis -- --smoke
# Parallel metropolis smoke at full width: 8 event domains on 8 worker
# threads under the invariant checker; exits non-zero on any
# serial/parallel divergence (outcome grid, counters, metrics) or an RSS
# peak past the ceiling.
INTANG_SIMCHECK=1 INTANG_METRO_RSS_MB=128 \
    cargo run --release -p intang-experiments --bin metropolis -- --smoke --domains 8 --workers 8
# Censor-profile gate: every profiles/*.toml must parse, round-trip and
# compile; the checked-in gfw_prior/gfw_evolved files must drive a quick
# paper sweep byte-identical (rows, events, metrics, diagnoses) to the
# hard-coded models at 1/2/8 workers under the invariant checker; and the
# turkmenistan profile must block with spoofed 403 blockpages, zero forged
# SYN/ACKs, and an outcome grid distinct from the GFW's.
INTANG_SIMCHECK=1 cargo run --release -p intang-experiments --bin censor_profiles >/dev/null
# Middlebox-enabled metropolis smoke: the seqfw hop behind the censor must
# not cost serial/parallel identity.
INTANG_SIMCHECK=1 INTANG_METRO_RSS_MB=128 \
    cargo run --release -p intang-experiments --bin metropolis -- --smoke --middlebox

echo "ci: OK"
