#!/usr/bin/env sh
# Tier-1 CI gate: build everything, run the full test suite, then smoke-test
# the sweep executor (bench_sweep --quick also verifies that parallel
# aggregates are byte-identical to the serial run, exiting non-zero if not).
set -eu

cd "$(dirname "$0")/.."

cargo build --release --all-targets
cargo test -q --release --workspace
cargo run --release -p intang-experiments --bin bench_sweep -- --quick >/dev/null

echo "ci: OK"
