#!/usr/bin/env sh
# Tier-1 CI gate: formatting, lints, build, the full test suite, then
# smoke-test the sweep executor (bench_sweep --quick also verifies that
# parallel aggregates, metrics sheets and diagnoses are byte-identical to
# the serial run, exiting non-zero if not).
set -eu

cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --all-targets
cargo test -q --release --workspace
# Telemetry determinism: parallel metrics/diagnoses must be byte-identical
# to serial, and every failed trial must land in a concrete §5 vector.
cargo test -q --release --test telemetry
# Golden traces: the packet-level mechanism of one canonical trial per
# strategy family, byte-compared against tests/golden/ snapshots.
cargo test -q --release --test golden_traces
cargo run --release -p intang-experiments --bin bench_sweep -- --quick >/dev/null
# Fault layer smoke: degradation matrix at all intensities; the 0.00 row
# doubles as a no-op check for the fault plumbing.
cargo run --release -p intang-experiments --bin fault_matrix -- --smoke >/dev/null

echo "ci: OK"
