//! Reproducibility guarantees: a (scenario, seed) pair fully determines a
//! run — the property every measurement in EXPERIMENTS.md rests on.

use intang_core::StrategyKind;
use intang_experiments::runner::{run_cell, sweep_with_threads, SweepConfig};
use intang_experiments::scenario::Scenario;
use intang_experiments::trial::{run_http_trial, Outcome, TrialSpec};
use intang_faults::FaultConfig;
use intang_telemetry::{Counter, FailureVector};

#[test]
fn identical_seeds_reproduce_identical_outcomes() {
    let s = Scenario::paper_inside(99);
    let site = &s.websites[3];
    let vp = &s.vantage_points[4];
    for seed in [1u64, 17, 999_983] {
        let a = run_http_trial(&TrialSpec::new(
            vp,
            site,
            Some(StrategyKind::TeardownRst(intang_core::Discrepancy::SmallTtl)),
            true,
            seed,
        ));
        let b = run_http_trial(&TrialSpec::new(
            vp,
            site,
            Some(StrategyKind::TeardownRst(intang_core::Discrepancy::SmallTtl)),
            true,
            seed,
        ));
        assert_eq!(a.outcome, b.outcome, "seed {seed}");
        assert_eq!(a.resets_seen, b.resets_seen, "seed {seed}");
        assert_eq!(a.gfw_detections, b.gfw_detections, "seed {seed}");
    }
}

#[test]
fn different_seeds_vary_stochastic_outcomes() {
    // TCB teardown against the evolved model is probabilistic (sticky
    // resync): across enough seeds both outcomes must appear.
    let s = Scenario::paper_inside(99);
    let mut site = s.websites[0].clone();
    site.old_device = false;
    site.evolved_device = true;
    site.server_seqfw = false;
    site.server_conntrack = false;
    site.flaky_server = false;
    site.loss = 0.0;
    site.rst_resync_prob = 0.5; // crank the coin toward fairness
    let vp = &s.vantage_points[0];
    let mut successes = 0;
    let mut failures = 0;
    for seed in 0..24 {
        let mut spec = TrialSpec::new(
            vp,
            &site,
            Some(StrategyKind::TeardownRst(intang_core::Discrepancy::SmallTtl)),
            true,
            4_000 + seed,
        );
        spec.route_change_prob = 0.0;
        match run_http_trial(&spec).outcome {
            Outcome::Success => successes += 1,
            _ => failures += 1,
        }
    }
    assert!(
        successes > 0 && failures > 0,
        "both outcomes occur: {successes} ok / {failures} bad"
    );
}

#[test]
fn whole_cells_replay_bit_identically() {
    let s = Scenario::smoke(7);
    let cfg = SweepConfig::new(Some(StrategyKind::ImprovedTeardown), true, 5, 1312);
    let a = run_cell(&s.vantage_points[0], 0, &s.websites[0], 0, &cfg);
    let b = run_cell(&s.vantage_points[0], 0, &s.websites[0], 0, &cfg);
    assert_eq!(a, b);
}

#[test]
fn sweep_results_are_independent_of_worker_count() {
    // The work-stealing executor must merge per-cell aggregates into
    // results byte-identical to a serial (single-worker) run, whatever the
    // stealing order — including in adaptive mode (strategy: None), where
    // each cell owns its history.
    let s = Scenario::smoke(7);
    let max_workers = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(4);
    for cfg in [
        SweepConfig::new(Some(StrategyKind::ImprovedTeardown), true, 2, 1312),
        SweepConfig::new(None, true, 2, 1312),
    ] {
        let serial = sweep_with_threads(&s, &cfg, 1);
        let parallel = sweep_with_threads(&s, &cfg, max_workers);
        assert_eq!(serial.rows, parallel.rows, "rows differ at {max_workers} workers");
        assert_eq!(serial.events, parallel.events);
        assert_eq!(serial.trials, parallel.trials);
    }
}

#[test]
fn sweeps_are_identical_across_workers_and_batching_modes() {
    // The full tentpole matrix: every observable sweep output — rows,
    // events, the merged metrics sheet, and every per-trial diagnosis —
    // must be byte-identical at 1, 2, and 8 workers, with batched event
    // dispatch forced on AND forced off. Batching and the streaming merge
    // are pure scheduling changes; any drift here means a hot-path
    // "optimisation" changed semantics.
    let s = Scenario::smoke(7);
    let cfg = SweepConfig::new(Some(StrategyKind::ImprovedTeardown), true, 3, 1312);
    let reference = {
        let prev = intang_netsim::batch::set_thread(Some(false));
        let run = sweep_with_threads(&s, &cfg, 1);
        intang_netsim::batch::set_thread(prev);
        run
    };
    for batching in [false, true] {
        for workers in [1usize, 2, 8] {
            let prev = intang_netsim::batch::set_thread(Some(batching));
            let run = sweep_with_threads(&s, &cfg, workers);
            intang_netsim::batch::set_thread(prev);
            let tag = format!("{workers} workers, batching={batching}");
            assert_eq!(reference.rows, run.rows, "rows differ at {tag}");
            assert_eq!(reference.events, run.events, "events differ at {tag}");
            assert_eq!(reference.metrics, run.metrics, "metrics differ at {tag}");
            assert_eq!(reference.diagnoses, run.diagnoses, "diagnoses differ at {tag}");
            // Diagnostics (worker_stats, merge_high_water) are intentionally
            // excluded: wall-clock and reorder depth are scheduling-dependent.
        }
    }
}

#[test]
fn faulted_sweeps_are_independent_of_worker_count() {
    // The fault layer must not weaken the executor's determinism contract:
    // with plans active, rows, events, the merged metrics sheet, and every
    // per-trial diagnosis must be byte-identical at 1, 2, and 8 workers.
    let s = Scenario::smoke(7);
    let mut cfg = SweepConfig::new(Some(StrategyKind::ImprovedTeardown), true, 3, 1312);
    cfg.faults = FaultConfig::at_intensity(0.75);
    let serial = sweep_with_threads(&s, &cfg, 1);
    for workers in [2usize, 8] {
        let parallel = sweep_with_threads(&s, &cfg, workers);
        assert_eq!(serial.rows, parallel.rows, "rows differ at {workers} workers");
        assert_eq!(serial.events, parallel.events, "events differ at {workers} workers");
        assert_eq!(serial.metrics, parallel.metrics, "metrics differ at {workers} workers");
        assert_eq!(serial.diagnoses, parallel.diagnoses, "diagnoses differ at {workers} workers");
    }
    // The plans actually did something (otherwise this test is vacuous) ...
    let faulted: u64 = [
        Counter::NetsimBurstLosses,
        Counter::NetsimReordered,
        Counter::NetsimDuplicated,
        Counter::FaultRouteFlaps,
        Counter::GfwInjectionsSuppressed,
    ]
    .iter()
    .map(|&c| serial.metrics.counter(c))
    .sum();
    assert!(faulted > 0, "intensity 0.75 should realize some faults");
    // ... and every fault-induced failure still lands in a §5 bin.
    assert!(
        serial.diagnoses.iter().all(|d| d.vector != FailureVector::Unclassified),
        "fault-induced failures must classify: {:?}",
        serial.diagnoses
    );
}

#[test]
fn faulted_sweeps_replay_bit_identically() {
    let s = Scenario::smoke(19);
    let mut cfg = SweepConfig::new(None, true, 2, 77);
    cfg.faults = FaultConfig::at_intensity(0.5);
    let a = sweep_with_threads(&s, &cfg, 4);
    let b = sweep_with_threads(&s, &cfg, 4);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.events, b.events);
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.diagnoses, b.diagnoses);
}

#[test]
fn zero_intensity_faults_change_nothing() {
    // FaultConfig::off() must leave a sweep byte-identical to one that
    // never mentions faults — the control row of the fault matrix.
    let s = Scenario::smoke(7);
    let plain = SweepConfig::new(Some(StrategyKind::TcbCreationResyncDesync), true, 3, 555);
    let mut zeroed = plain.clone();
    zeroed.faults = FaultConfig::off();
    let a = sweep_with_threads(&s, &plain, 2);
    let b = sweep_with_threads(&s, &zeroed, 2);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.metrics, b.metrics);
    for c in [
        Counter::NetsimBurstLosses,
        Counter::NetsimReordered,
        Counter::NetsimDuplicated,
        Counter::NetsimMtuDropped,
        Counter::FaultRouteFlaps,
        Counter::GfwInjectionsSuppressed,
        Counter::GfwDeviceFlaps,
        Counter::GfwBlacklistJitterApplied,
        Counter::IntangReprotects,
        Counter::IntangRetriesAbandoned,
        Counter::IntangTtlReprobes,
    ] {
        assert_eq!(a.metrics.counter(c), 0, "{c:?} must stay zero without a plan");
    }
}

#[test]
fn scenario_generation_is_pure() {
    let a = Scenario::paper_inside(2017);
    let b = Scenario::paper_inside(2017);
    for (x, y) in a.websites.iter().zip(&b.websites) {
        assert_eq!(x.addr, y.addr);
        assert_eq!(x.core_hops, y.core_hops);
        assert_eq!(x.server_hops, y.server_hops);
        assert_eq!(x.rst_resync_prob, y.rst_resync_prob);
    }
    let c = Scenario::paper_inside(2018);
    let differs = a
        .websites
        .iter()
        .zip(&c.websites)
        .any(|(x, y)| x.core_hops != y.core_hops || x.old_device != y.old_device);
    assert!(differs, "different master seeds give different worlds");
}

#[test]
fn metropolis_is_identical_across_workers_and_batching() {
    // The serial metropolis matrix: one 5k-flow shared world at a fixed
    // shard count, re-run with 1/2/8 aggregation workers and batched
    // event dispatch forced off AND on, byte-compared against the serial
    // unbatched reference. Workers partition *aggregation* and batching
    // partitions *dispatch*; neither may touch outcomes, counts, events,
    // the merged metrics sheet, or the gauge series. (The shard count
    // itself is event-loop-visible — it defines the per-shard spawn and
    // sweep chains — so it is pinned here; the cross-shard guarantee is
    // the domain grid below.)
    use intang_experiments::metropolis::{run_metropolis_with_workers, MetroParams, MetroRun};

    let run_grid_cell = |batching: bool, workers: usize| -> MetroRun {
        let prev_batch = intang_netsim::batch::set_thread(Some(batching));
        let prev_series = intang_telemetry::series::set_thread(Some(true));
        let mut p = MetroParams::new(5_000, 77);
        p.shards = 8;
        let run = run_metropolis_with_workers(&p, workers);
        intang_telemetry::series::set_thread(prev_series);
        intang_netsim::batch::set_thread(prev_batch);
        run
    };

    let reference = run_grid_cell(false, 1);
    let ref_grid: Vec<_> = reference.results.iter().map(|r| (r.outcome, r.latency_us)).collect();
    let (spawned, ..) = reference.counts;
    assert_eq!(spawned, 5_000);
    assert_eq!(reference.order_violations, 0);

    for batching in [false, true] {
        for workers in [1usize, 2, 8] {
            let run = run_grid_cell(batching, workers);
            let tag = format!("{workers} workers, batching={batching}");
            let grid: Vec<_> = run.results.iter().map(|r| (r.outcome, r.latency_us)).collect();
            assert_eq!(ref_grid, grid, "per-flow outcome grid differs at {tag}");
            assert_eq!(reference.counts, run.counts, "counts differ at {tag}");
            assert_eq!(reference.events, run.events, "events differ at {tag}");
            assert_eq!(reference.metrics, run.metrics, "merged metrics differ at {tag}");
            assert_eq!(reference.series, run.series, "gauge series differ at {tag}");
            assert_eq!(run.order_violations, 0, "ordering regressions at {tag}");
            // Shard summaries must partition the grid regardless of shape.
            let (s, ok, rst, stall) = run.counts;
            assert_eq!(run.shards.iter().map(|x| x.flows).sum::<u64>(), s, "{tag}");
            assert_eq!(run.shards.iter().map(|x| x.succeeded).sum::<u64>(), ok, "{tag}");
            assert_eq!(run.shards.iter().map(|x| x.reset).sum::<u64>(), rst, "{tag}");
            assert_eq!(run.shards.iter().map(|x| x.stalled).sum::<u64>(), stall, "{tag}");
        }
    }
}

#[test]
fn metropolis_domains_are_identical_to_the_serial_reference() {
    // The parallel-metropolis tentpole matrix: one 5k-flow world at 8
    // state shards, split into 1/2/8 event domains on 1/2/8 work-stealing
    // threads, with batching forced off AND on — every cell byte-compared
    // against the domains=1 serial reference. The sharded censor/shim
    // lanes make each shard's event stream causally closed, so grouping
    // shards into domains must not move a single byte: outcome grid,
    // counts, total events, merged metrics, and the zip-summed gauge
    // series all identical.
    use intang_experiments::metropolis::{run_metropolis_domains, MetroDomainsRun, MetroParams};

    let run_grid_cell = |domains: u32, workers: usize, batching: bool| -> MetroDomainsRun {
        let prev_batch = intang_netsim::batch::set_thread(Some(batching));
        let prev_series = intang_telemetry::series::set_thread(Some(true));
        let mut p = MetroParams::new(5_000, 77);
        p.shards = 8;
        let run = run_metropolis_domains(&p, domains, workers);
        intang_telemetry::series::set_thread(prev_series);
        intang_netsim::batch::set_thread(prev_batch);
        run
    };

    let reference = run_grid_cell(1, 1, false);
    let ref_grid: Vec<_> = reference.run.results.iter().map(|r| (r.outcome, r.latency_us)).collect();
    assert_eq!(reference.run.counts.0, 5_000);
    assert_eq!(reference.run.order_violations, 0);
    assert!(reference.run.series.is_some(), "series telemetry must be on for the grid");

    for batching in [false, true] {
        for domains in [1u32, 2, 8] {
            for workers in [1usize, 2, 8] {
                let run = run_grid_cell(domains, workers, batching);
                let tag = format!("{domains} domains, {workers} workers, batching={batching}");
                let grid: Vec<_> = run.run.results.iter().map(|r| (r.outcome, r.latency_us)).collect();
                assert_eq!(ref_grid, grid, "per-flow outcome grid differs at {tag}");
                assert_eq!(reference.run.counts, run.run.counts, "counts differ at {tag}");
                assert_eq!(reference.run.events, run.run.events, "events differ at {tag}");
                assert_eq!(reference.run.metrics, run.run.metrics, "merged metrics differ at {tag}");
                assert_eq!(reference.run.series, run.run.series, "gauge series differ at {tag}");
                assert_eq!(reference.run.shards, run.run.shards, "shard summaries differ at {tag}");
                assert_eq!(
                    (
                        reference.run.collateral_resets,
                        reference.run.tcbs_evicted,
                        reference.run.resync_storms
                    ),
                    (run.run.collateral_resets, run.run.tcbs_evicted, run.run.resync_storms),
                    "censor counters differ at {tag}"
                );
                assert_eq!(run.run.order_violations, 0, "ordering regressions at {tag}");
                assert_eq!(
                    run.domain_stats.iter().map(|d| d.events).sum::<u64>(),
                    run.run.events,
                    "domain events must partition the total at {tag}"
                );
            }
        }
    }
}
