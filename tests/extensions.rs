//! Extension behaviors beyond the headline tables: HTTP *response*
//! censorship (§3.3), the West Chamber historical baseline (§2.2/§9),
//! history persistence across sessions (§6's Redis durability), and pcap
//! export of a censored run.

use intang_apps::host::add_host;
use intang_apps::http::{HttpClientDriver, HttpServerDriver};
use intang_core::select::History;
use intang_core::StrategyKind;
use intang_experiments::scenario::Scenario;
use intang_experiments::tap::RecorderTap;
use intang_experiments::trial::{run_http_trial, Outcome, TrialSpec};
use intang_gfw::{GfwConfig, GfwElement};
use intang_netsim::{pcap, Direction, Duration, Instant, Link, Simulation};
use intang_packet::http::HttpRequest;
use intang_tcpstack::StackProfile;
use std::net::Ipv4Addr;

/// §3.3: on the rare paths that still censor responses, an HTTPS-redirect
/// site leaks the sensitive request target into the 301 Location header —
/// and the censor catches it even though the *request* was clean of the
/// monitored direction's perspective... the reason such sites were
/// excluded from the measurement population.
#[test]
fn response_censorship_catches_location_header_leak() {
    let client_addr = Ipv4Addr::new(10, 0, 0, 1);
    let server_addr = Ipv4Addr::new(203, 0, 113, 70);
    let run = |censor_responses: bool| {
        let mut sim = Simulation::new(42);
        let (driver, report) = HttpClientDriver::new(server_addr, 80, HttpRequest::get("/ultrasurf-mirror", "redirector.example"));
        add_host(
            &mut sim,
            "client",
            client_addr,
            StackProfile::linux_4_4(),
            Box::new(driver),
            Direction::ToServer,
        );
        sim.add_link(Link::new(Duration::from_millis(3), 4));
        let mut cfg = GfwConfig::evolved();
        cfg.overload_miss_prob = 0.0;
        cfg.censor_responses = censor_responses;
        // The *request* pattern here is not a rule; only the response leaks
        // a blacklisted domain through the Location header.
        cfg.rules = intang_gfw::RuleSet::empty().with_domain("redirector.example").into();
        let (gfw, handle) = GfwElement::new(cfg);
        sim.add_element(Box::new(gfw));
        sim.add_link(Link::new(Duration::from_millis(5), 5));
        let (_i, sh) = add_host(
            &mut sim,
            "server",
            server_addr,
            StackProfile::linux_4_4(),
            Box::new(HttpServerDriver::new(80).redirecting_to_https()),
            Direction::ToClient,
        );
        sh.with_tcp(|t| t.listen(80));
        sim.run_until(Instant(15_000_000));
        let out = (report.borrow().reset, handle.detections().len());
        out
    };
    // The Host header already carries the blacklisted domain in the
    // request direction, so both regimes detect at least once; enabling
    // response censorship can only add Location-header detections on top.
    // (The truly response-only case is the next test.)
    let (_reset_off, det_off) = run(false);
    let (_reset_on, det_on) = run(true);
    assert!(det_on >= det_off, "response censoring can only add detections");
    assert!(det_off >= 1, "request-direction Host header already matches");
}

/// Response-direction-only detection: keyword appears only in the page
/// body the server returns.
#[test]
fn response_only_keyword_detected_only_when_response_censoring_enabled() {
    let client_addr = Ipv4Addr::new(10, 0, 0, 1);
    let server_addr = Ipv4Addr::new(203, 0, 113, 71);
    let run = |censor_responses: bool| {
        let mut sim = Simulation::new(43);
        let (driver, report) = HttpClientDriver::new(server_addr, 80, HttpRequest::get("/page", "clean.example"));
        add_host(
            &mut sim,
            "client",
            client_addr,
            StackProfile::linux_4_4(),
            Box::new(driver),
            Direction::ToServer,
        );
        sim.add_link(Link::new(Duration::from_millis(3), 4));
        let mut cfg = GfwConfig::evolved();
        cfg.overload_miss_prob = 0.0;
        cfg.censor_responses = censor_responses;
        let (gfw, handle) = GfwElement::new(cfg);
        sim.add_element(Box::new(gfw));
        sim.add_link(Link::new(Duration::from_millis(5), 5));
        let body = b"<html>download ultrasurf here</html>";
        let (_i, sh) = add_host(
            &mut sim,
            "server",
            server_addr,
            StackProfile::linux_4_4(),
            Box::new(HttpServerDriver::new(80).with_body(body)),
            Direction::ToClient,
        );
        sh.with_tcp(|t| t.listen(80));
        sim.run_until(Instant(15_000_000));
        let out = (report.borrow().response.is_some(), handle.detections().len());
        out
    };
    let (got_resp_off, det_off) = run(false);
    assert!(got_resp_off, "today's GFW ignores response bodies (§3.3)");
    assert_eq!(det_off, 0);
    let (_resp_on, det_on) = run(true);
    assert!(det_on >= 1, "the rare response-censoring paths catch it");
}

/// The West Chamber baseline still beats the *prior* censor model but is
/// clearly inferior to the paper's improved strategies against the evolved
/// deployment — matching §2.2's "has now become ineffective".
#[test]
fn west_chamber_underperforms_improved_teardown() {
    let s = Scenario::paper_inside(77);
    let mut site = s.websites[0].clone();
    site.old_device = false;
    site.evolved_device = true;
    site.server_seqfw = false;
    site.server_conntrack = false;
    site.flaky_server = false;
    site.path_drops_noflag = false;
    site.loss = 0.0;
    site.rst_resync_prob = 0.35;
    let vp = &s.vantage_points[0];
    let rate = |kind: StrategyKind| -> f64 {
        let n = 16;
        let ok = (0..n)
            .filter(|seed| {
                let mut spec = TrialSpec::new(vp, &site, Some(kind), true, 500_000 + seed);
                spec.route_change_prob = 0.0;
                run_http_trial(&spec).outcome == Outcome::Success
            })
            .count();
        ok as f64 / n as f64
    };
    let wc = rate(StrategyKind::WestChamber);
    let improved = rate(StrategyKind::ImprovedTeardown);
    assert!(improved > wc, "improved teardown ({improved}) beats West Chamber ({wc})");
    assert!(improved >= 0.9);
    assert!(wc < 0.9, "the 2011 tool no longer cuts it: {wc}");
}

/// History persistence: a second "session" starts from the serialized
/// store and keeps the converged choice without re-exploring.
#[test]
fn history_survives_restart_via_serialization() {
    let s = Scenario::paper_inside(21);
    let site = &s.websites[1];
    let vp = &s.vantage_points[0];
    let first = std::rc::Rc::new(std::cell::RefCell::new(History::new()));
    for seed in 0..6u64 {
        let mut spec = TrialSpec::new(vp, site, None, true, 700 + seed);
        spec.history = Some(first.clone());
        run_http_trial(&spec);
    }
    let text = first.borrow().serialize();
    assert!(!text.is_empty());

    // "Restart": a new engine session loads the store and immediately
    // chooses the converged strategy for this destination.
    let restored = History::deserialize(&text);
    let before = first.borrow().choose(site.addr, &StrategyKind::adaptive_pool());
    let after = restored.choose(site.addr, &StrategyKind::adaptive_pool());
    assert_eq!(before, after, "the restored session agrees with the live one");
    let t = restored.tally(site.addr, after);
    assert!(t.attempts >= 1);
}

/// A censored run exports to a Wireshark-openable pcap containing the
/// censor's reset volley.
#[test]
fn censored_run_exports_valid_pcap() {
    let client_addr = Ipv4Addr::new(10, 0, 0, 1);
    let server_addr = Ipv4Addr::new(203, 0, 113, 90);
    let mut sim = Simulation::new(3);
    let (driver, _report) = HttpClientDriver::new(server_addr, 80, HttpRequest::get("/ultrasurf", "x.example"));
    add_host(
        &mut sim,
        "client",
        client_addr,
        StackProfile::linux_4_4(),
        Box::new(driver),
        Direction::ToServer,
    );
    sim.add_link(Link::new(Duration::from_micros(100), 0));
    let (tap, tap_handle) = RecorderTap::new("tap");
    sim.add_element(Box::new(tap));
    sim.add_link(Link::new(Duration::from_millis(3), 3));
    let mut cfg = GfwConfig::evolved();
    cfg.overload_miss_prob = 0.0;
    let (gfw, _h) = GfwElement::new(cfg);
    sim.add_element(Box::new(gfw));
    sim.add_link(Link::new(Duration::from_millis(5), 4));
    let (_i, sh) = add_host(
        &mut sim,
        "server",
        server_addr,
        StackProfile::linux_4_4(),
        Box::new(HttpServerDriver::new(80)),
        Direction::ToClient,
    );
    sh.with_tcp(|t| t.listen(80));
    sim.run_until(Instant(10_000_000));

    let writer = tap_handle.to_pcap();
    assert!(writer.packet_count() > 5);
    let parsed = pcap::parse(writer.as_bytes()).expect("valid pcap");
    assert_eq!(parsed.len(), writer.packet_count());
    // Timestamps are monotone and every record parses as IPv4.
    let mut last = Instant::ZERO;
    let mut rsts = 0;
    for (at, wire) in &parsed {
        assert!(*at >= last);
        last = *at;
        let ip = intang_packet::Ipv4Packet::new_checked(&wire[..]).expect("raw IPv4 records");
        if ip.protocol() == intang_packet::IpProtocol::Tcp {
            let t = intang_packet::TcpPacket::new_checked(ip.payload()).unwrap();
            if t.flags().rst() {
                rsts += 1;
            }
        }
    }
    assert!(rsts >= 3, "the reset volley is in the capture: {rsts}");
}
