//! Golden-trace regression tests: one canonical trial per strategy family,
//! rendered as the causal lineage of the trial's final packet event and
//! compared byte-for-byte against a checked-in snapshot.
//!
//! These pin the *mechanism*, not just the outcome: if a refactor changes
//! which packets a strategy emits, in what order, or how the censor reacts
//! to them, the lineage changes even when the trial still "succeeds".
//!
//! To regenerate after an intentional behaviour change:
//!
//! ```text
//! INTANG_BLESS=1 cargo test --test golden_traces
//! ```
//!
//! then review the diff under `tests/golden/` like any other code change.

use intang_core::{Discrepancy, StrategyKind};
use intang_experiments::scenario::{Scenario, Website};
use intang_experiments::trial::{build_http_sim, TrialSpec};
use intang_netsim::Instant;
use std::path::PathBuf;

/// A benign, fully deterministic path: evolved censor only, no client- or
/// server-side middlebox interference, zero natural loss, no route change.
fn benign_site() -> (Scenario, Website) {
    let s = Scenario::smoke(11);
    let mut site = s.websites[0].clone();
    site.old_device = false;
    site.evolved_device = true;
    site.server_seqfw = false;
    site.server_conntrack = false;
    site.path_drops_noflag = false;
    site.flaky_server = false;
    site.loss = 0.0;
    site.rst_resync_prob = 0.2;
    (s, site)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Run the canonical trial for `kind` and render the last trace event's
/// causal chain.
fn render_trial(kind: StrategyKind) -> String {
    let (s, site) = benign_site();
    let mut spec = TrialSpec::new(&s.vantage_points[0], &site, Some(kind), true, 42);
    spec.route_change_prob = 0.0;
    let (mut sim, parts) = build_http_sim(&spec);
    sim.trace.enable();
    sim.run_until(Instant(25_000_000));
    let last = sim.trace.events().last().expect("trial produced trace events").id;
    let got_response = parts.report.borrow().response.is_some();
    let resets = {
        let st = parts.intang.stats();
        st.type1_resets_seen + st.type2_resets_seen
    };
    format!(
        "strategy: {kind:?}\nresponse: {got_response}\nresets_seen: {resets}\nlineage of final event:\n{}",
        sim.trace.render_lineage(last)
    )
}

fn check(name: &str, kind: StrategyKind) {
    let rendered = render_trial(kind);
    let path = golden_path(name);
    if std::env::var("INTANG_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create tests/golden");
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run INTANG_BLESS=1 cargo test --test golden_traces",
            path.display()
        )
    });
    assert_eq!(
        rendered, want,
        "golden trace '{name}' drifted; if intentional, regenerate with INTANG_BLESS=1 cargo test --test golden_traces"
    );
}

#[test]
fn golden_no_strategy() {
    check("no_strategy", StrategyKind::NoStrategy);
}

#[test]
fn golden_tcb_creation_syn() {
    check("tcb_creation_syn", StrategyKind::TcbCreationSyn(Discrepancy::SmallTtl));
}

#[test]
fn golden_in_order_overlap() {
    check("in_order_overlap", StrategyKind::InOrderOverlap(Discrepancy::SmallTtl));
}

#[test]
fn golden_teardown_rst() {
    check("teardown_rst", StrategyKind::TeardownRst(Discrepancy::SmallTtl));
}

#[test]
fn golden_improved_teardown() {
    check("improved_teardown", StrategyKind::ImprovedTeardown);
}

#[test]
fn golden_tcb_creation_resync_desync() {
    check("tcb_creation_resync_desync", StrategyKind::TcbCreationResyncDesync);
}

#[test]
fn golden_teardown_tcb_reversal() {
    check("teardown_tcb_reversal", StrategyKind::TeardownTcbReversal);
}

#[test]
fn golden_out_of_order_ip_frag() {
    check("out_of_order_ip_frag", StrategyKind::OutOfOrderIpFrag);
}

/// Metropolis golden: a 16-flow shared world whose final activity is a
/// collateral reset — flow 13 carries the keyword and poisons
/// (client 0, site 0); flow 15, benign on the same pair, starts last and
/// dies by blacklist. The snapshot pins the cross-flow causal chain: the
/// lineage of the run's final packet event threads from flow 15's own
/// traffic through the censor's blacklist volley.
#[test]
fn golden_metropolis_collateral() {
    use intang_apps::metro::{FlowOutcome, FlowSpec};
    use intang_experiments::metropolis::{build_metropolis, MetroParams, MetroWorld};
    use intang_netsim::Duration;
    use std::net::Ipv4Addr;

    // (start_us, client_idx, site_idx, keyword)
    let placement: [(u64, u32, u32, bool); 16] = [
        (0, 1, 0, false),
        (1_000, 1, 1, false),
        (2_000, 1, 0, false),
        (3_000, 1, 1, false),
        (4_000, 1, 0, false),
        (5_000, 1, 1, false),
        (6_000, 1, 0, false),
        (7_000, 1, 1, false),
        (8_000, 1, 0, false),
        (9_000, 1, 1, false),
        (10_000, 1, 0, false),
        (11_000, 1, 1, false),
        (12_000, 1, 0, false),
        (20_000, 0, 0, true),   // detected: blacklists (client 0, site 0)
        (250_000, 1, 1, false), // unrelated late flow, untouched
        (300_000, 0, 0, false), // collateral: benign on the poisoned pair
    ];
    let world = MetroWorld {
        clients: vec![Ipv4Addr::new(10, 1, 0, 1), Ipv4Addr::new(10, 1, 0, 2)],
        sites: vec![Ipv4Addr::new(203, 0, 113, 1), Ipv4Addr::new(203, 0, 113, 2)],
        specs: placement
            .iter()
            .enumerate()
            .map(|(id, &(start, client, site, keyword))| FlowSpec {
                start: Instant(start),
                client,
                site,
                isn: 0x2000_0000 + id as u32,
                keyword,
                request_delay: Duration::ZERO,
            })
            .collect(),
        strategies: vec![StrategyKind::NoStrategy; 16],
    };
    let mut p = MetroParams::new(16, 16);
    p.shards = 4;
    p.horizon = Instant(1_000_000);
    let (mut sim, parts) = build_metropolis(&p, &world);
    sim.trace.enable();
    sim.run_until(p.horizon);

    let last = sim.trace.events().last().expect("metropolis produced trace events").id;
    let results = parts.metro.results();
    let ok = results.iter().filter(|r| r.outcome == FlowOutcome::Success).count();
    let reset = results.iter().filter(|r| r.outcome == FlowOutcome::Reset).count();
    let stalled = results.iter().filter(|r| r.outcome == FlowOutcome::Stalled).count();
    let rendered = format!(
        "flows: 16\noutcomes: ok={ok} reset={reset} stalled={stalled}\ncollateral_resets: {}\nvictim outcome: {:?}\nlineage of final event:\n{}",
        parts.gfw.blacklist_collateral_resets(),
        results[15].outcome,
        sim.trace.render_lineage(last)
    );
    let path = golden_path("metropolis_16");
    if std::env::var("INTANG_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, &rendered).expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run INTANG_BLESS=1 cargo test --test golden_traces",
            path.display()
        )
    });
    assert_eq!(
        rendered, want,
        "golden trace 'metropolis_16' drifted; if intentional, regenerate with INTANG_BLESS=1 cargo test --test golden_traces"
    );
}
