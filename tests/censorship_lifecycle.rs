//! The censor's full reaction lifecycle observed from the client side:
//! detection → type-1/type-2 volley → 90-second pair blacklist (forged
//! SYN/ACKs against new handshakes, resets against everything else) →
//! expiry. Cross-crate: apps + gfw + netsim + packet.

use intang_apps::host::add_host;
use intang_apps::http::{HttpClientDriver, HttpServerDriver};
use intang_gfw::reset::TYPE2_SEQ_OFFSETS;
use intang_gfw::{GfwConfig, GfwElement};
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::http::HttpRequest;
use intang_packet::{Ipv4Packet, TcpFlags, TcpPacket};
use intang_tcpstack::StackProfile;
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 44);

struct World {
    sim: Simulation,
    gfw: intang_gfw::GfwHandle,
    report: std::rc::Rc<std::cell::RefCell<intang_apps::http::HttpClientReport>>,
    tap: intang_experiments::tap::TapHandle,
}

fn censored_fetch_world(seed: u64, second_fetch_at: Option<Instant>) -> World {
    let mut sim = Simulation::new(seed);
    let (d1, report) = HttpClientDriver::new(SERVER, 80, HttpRequest::get("/ultrasurf", "lab.example"));
    struct Pair(Vec<Box<dyn intang_apps::HostDriver>>);
    impl intang_apps::HostDriver for Pair {
        fn poll(&mut self, now: Instant, tcp: &mut intang_tcpstack::TcpEndpoint, udp: &mut intang_apps::UdpLayer) {
            for d in &mut self.0 {
                d.poll(now, tcp, udp);
            }
        }
    }
    let mut drivers: Vec<Box<dyn intang_apps::HostDriver>> = vec![Box::new(d1)];
    if let Some(at) = second_fetch_at {
        let (d2, _r2) = HttpClientDriver::new(SERVER, 80, HttpRequest::get("/harmless", "lab.example"));
        drivers.push(Box::new(d2.starting_at(at)));
        // No periodic wakeups in HttpClientDriver: nudge the host.
    }
    add_host(
        &mut sim,
        "client",
        CLIENT,
        StackProfile::linux_4_4(),
        Box::new(Pair(drivers)),
        Direction::ToServer,
    );
    if let Some(at) = second_fetch_at {
        sim.schedule_timer(0, at, 1);
    }
    sim.add_link(Link::new(Duration::from_micros(100), 0));
    let (tap, tap_handle) = intang_experiments::tap::RecorderTap::new("client-tap");
    sim.add_element(Box::new(tap));
    sim.add_link(Link::new(Duration::from_millis(4), 4));
    let mut cfg = GfwConfig::evolved();
    cfg.overload_miss_prob = 0.0;
    let (gfw, gfw_handle) = GfwElement::new(cfg);
    sim.add_element(Box::new(gfw));
    sim.add_link(Link::new(Duration::from_millis(6), 5));
    let (_i, sh) = add_host(
        &mut sim,
        "server",
        SERVER,
        StackProfile::linux_4_4(),
        Box::new(HttpServerDriver::new(80)),
        Direction::ToClient,
    );
    sh.with_tcp(|t| t.listen(80));
    World {
        sim,
        gfw: gfw_handle,
        report,
        tap: tap_handle,
    }
}

/// (TTL, window, seq) triples for each reset family.
type RstFingerprints = Vec<(u8, u16, u32)>;

fn rst_families(tap: &intang_experiments::tap::TapHandle) -> (RstFingerprints, RstFingerprints) {
    let mut t1 = Vec::new();
    let mut t2 = Vec::new();
    for c in tap.captures() {
        if c.dir != Direction::ToClient {
            continue;
        }
        let Ok(ip) = Ipv4Packet::new_checked(&c.wire[..]) else { continue };
        let Ok(t) = TcpPacket::new_checked(ip.payload()) else { continue };
        if t.flags() == TcpFlags::RST {
            t1.push((ip.ttl(), t.window(), t.seq_number()));
        } else if t.flags() == TcpFlags::RST_ACK {
            t2.push((ip.ttl(), t.window(), t.seq_number()));
        }
    }
    (t1, t2)
}

#[test]
fn detection_triggers_the_section_21_volley() {
    let mut w = censored_fetch_world(5, None);
    w.sim.run_until(Instant(10_000_000));
    assert!(w.gfw.detected_any());
    assert!(w.report.borrow().reset, "the client connection died on a reset");
    let (t1, t2) = rst_families(&w.tap);
    assert!(!t1.is_empty(), "at least one type-1 bare RST reached the client");
    assert!(t2.len() >= 3, "the type-2 triple reached the client");
    // The first three type-2 resets use the X, X+1460, X+4380 ladder.
    let base = t2[0].2;
    let offsets: Vec<u32> = t2.iter().take(3).map(|x| x.2.wrapping_sub(base)).collect();
    assert_eq!(offsets, TYPE2_SEQ_OFFSETS.to_vec());
}

#[test]
fn blacklist_obstructs_clean_fetches_for_ninety_seconds() {
    // Second (harmless) fetch at t = 30 s: inside the window, it must fail —
    // its SYN draws a forged SYN/ACK with a wrong ISN.
    let mut w = censored_fetch_world(6, Some(Instant(30_000_000)));
    w.sim.run_until(Instant(80_000_000));
    assert!(w.gfw.forged_synacks() >= 1, "SYN during the blacklist drew a forged SYN/ACK");
    assert!(w.gfw.blacklist_hits() > 0);
}

#[test]
fn blacklist_expires_after_ninety_seconds() {
    // Second fetch at t = 100 s: the pair blacklist (90 s) has lapsed and a
    // harmless request sails through.
    let mut w = censored_fetch_world(7, Some(Instant(100_000_000)));
    w.sim.run_until(Instant(130_000_000));
    assert_eq!(w.gfw.forged_synacks(), 0, "no forged SYN/ACK after expiry");
    // The tap saw the 200 OK of the second fetch.
    let ok = w
        .tap
        .captures()
        .iter()
        .filter(|c| c.dir == Direction::ToClient)
        .any(|c| c.wire.windows(15).any(|w| w == b"HTTP/1.1 200 OK"));
    assert!(ok, "post-expiry fetch succeeded");
}

#[test]
fn forged_synack_has_a_wrong_isn_and_wedges_the_handshake() {
    let mut w = censored_fetch_world(8, Some(Instant(30_000_000)));
    w.sim.run_until(Instant(80_000_000));
    // Find a SYN/ACK toward the client that is NOT from the real server
    // socket: its ack number won't match any client ISN+1 the tap saw.
    let caps = w.tap.captures();
    let client_isns: Vec<u32> = caps
        .iter()
        .filter(|c| c.dir == Direction::ToServer)
        .filter_map(|c| {
            let ip = Ipv4Packet::new_checked(&c.wire[..]).ok()?;
            let t = TcpPacket::new_checked(ip.payload()).ok()?;
            (t.flags() == TcpFlags::SYN).then(|| t.seq_number())
        })
        .collect();
    let synacks: Vec<(u32, u32)> = caps
        .iter()
        .filter(|c| c.dir == Direction::ToClient)
        .filter_map(|c| {
            let ip = Ipv4Packet::new_checked(&c.wire[..]).ok()?;
            let t = TcpPacket::new_checked(ip.payload()).ok()?;
            (t.flags() == TcpFlags::SYN_ACK).then(|| (t.seq_number(), t.ack_number()))
        })
        .collect();
    assert!(
        synacks
            .iter()
            .any(|(_, ack)| client_isns.iter().any(|isn| isn.wrapping_add(1) == *ack)),
        "a forged SYN/ACK still acks the real SYN (that's what obstructs the handshake)"
    );
}
