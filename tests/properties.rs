//! Property-based invariants across the wire-format and stream-assembly
//! substrates: these are the layers every other result rests on.

use intang_gfw::dpi::{Automaton, RuleSet, StreamMatcher};
use intang_packet::frag::{self, OverlapPolicy};
use intang_packet::tcp::{TcpFlags, TcpOption, TcpRepr};
use intang_packet::{dns::DnsMessage, Ipv4Packet, Ipv4Repr, IpProtocol, TcpPacket};
use intang_tcpstack::reasm::{Assembler, SegmentOverlapPolicy};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (0u8..=0x3f).prop_map(TcpFlags)
}

fn arb_options() -> impl Strategy<Value = Vec<TcpOption>> {
    prop::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(TcpOption::Mss),
            (0u8..15).prop_map(TcpOption::WindowScale),
            Just(TcpOption::SackPermitted),
            (any::<u32>(), any::<u32>()).prop_map(|(a, b)| TcpOption::Timestamps { tsval: a, tsecr: b }),
            any::<[u8; 16]>().prop_map(TcpOption::Md5Sig),
        ],
        0..3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// TCP emit → parse is the identity on every field.
    #[test]
    fn tcp_round_trip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        flags in arb_flags(), window in any::<u16>(),
        options in arb_options(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut repr = TcpRepr::new(sp, dp);
        repr.seq = seq;
        repr.ack = ack;
        repr.flags = flags;
        repr.window = window;
        repr.options = options.clone();
        repr.payload = payload.clone();
        let wire = repr.emit(src, dst);
        let pkt = TcpPacket::new_checked(&wire[..]).unwrap();
        prop_assert!(pkt.verify_checksum(src, dst));
        prop_assert_eq!(pkt.src_port(), sp);
        prop_assert_eq!(pkt.dst_port(), dp);
        prop_assert_eq!(pkt.seq_number(), seq);
        prop_assert_eq!(pkt.ack_number(), ack);
        prop_assert_eq!(pkt.flags(), flags);
        prop_assert_eq!(pkt.window(), window);
        prop_assert_eq!(pkt.options(), options);
        prop_assert_eq!(pkt.payload(), &payload[..]);
    }

    /// IPv4 emit → parse is the identity, and the checksum validates.
    #[test]
    fn ipv4_round_trip(
        src in arb_addr(), dst in arb_addr(),
        ttl in 1u8..=255, ident in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let repr = Ipv4Repr { ttl, ident, ..Ipv4Repr::new(src, dst, IpProtocol::Tcp) };
        let wire = repr.emit(&payload);
        let pkt = Ipv4Packet::new_checked(&wire[..]).unwrap();
        prop_assert!(pkt.verify_header_checksum());
        prop_assert!(pkt.total_len_consistent());
        prop_assert_eq!(pkt.src_addr(), src);
        prop_assert_eq!(pkt.dst_addr(), dst);
        prop_assert_eq!(pkt.ttl(), ttl);
        prop_assert_eq!(pkt.ident(), ident);
        prop_assert_eq!(pkt.payload(), &payload[..]);
    }

    /// Any fragmentation of a datagram reassembles to the original under
    /// both overlap policies, in any delivery order.
    #[test]
    fn fragmentation_reassembly_identity(
        payload in prop::collection::vec(any::<u8>(), 16..512),
        cuts in prop::collection::vec(1usize..64, 0..4),
        order in any::<u64>(),
        last_wins in any::<bool>(),
    ) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let repr = Ipv4Repr { ident: 7, ..Ipv4Repr::new(src, dst, IpProtocol::Tcp) };
        let wire = repr.emit(&payload);
        // 8-aligned boundaries; fragment_at ignores any outside (0, len).
        let boundaries: Vec<usize> = cuts.iter().map(|c| c * 8).collect();
        let mut frags = frag::fragment_at(&wire, &boundaries);
        // Pseudo-random shuffle (deterministic in `order`).
        let mut o = order;
        for i in (1..frags.len()).rev() {
            o = o.wrapping_mul(6364136223846793005).wrapping_add(1);
            frags.swap(i, (o as usize) % (i + 1));
        }
        let policy = if last_wins { OverlapPolicy::LastWins } else { OverlapPolicy::FirstWins };
        let out = frag::reassemble(policy, frags).expect("must complete");
        let pkt = Ipv4Packet::new_checked(&out[..]).unwrap();
        prop_assert_eq!(pkt.payload(), &payload[..]);
        prop_assert!(!pkt.is_fragment());
    }

    /// The stream assembler delivers exactly the in-order byte stream when
    /// segments don't overlap, regardless of arrival order.
    #[test]
    fn assembler_delivers_contiguous_stream(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..32), 1..8),
        order in any::<u64>(),
        last_wins in any::<bool>(),
    ) {
        let policy = if last_wins { SegmentOverlapPolicy::LastWins } else { SegmentOverlapPolicy::FirstWins };
        let mut asm = Assembler::new(policy);
        // Compute offsets.
        let mut offsets = Vec::new();
        let mut off = 0u64;
        for c in &chunks {
            offsets.push(off);
            off += c.len() as u64;
        }
        let expected: Vec<u8> = chunks.iter().flatten().copied().collect();
        let mut idx: Vec<usize> = (0..chunks.len()).collect();
        let mut o = order;
        for i in (1..idx.len()).rev() {
            o = o.wrapping_mul(6364136223846793005).wrapping_add(1);
            idx.swap(i, (o as usize) % (i + 1));
        }
        let mut got = Vec::new();
        for &i in &idx {
            asm.insert(offsets[i], &chunks[i]);
            got.extend_from_slice(&asm.pull());
        }
        prop_assert_eq!(got, expected);
        prop_assert!(!asm.has_gaps());
    }

    /// The streaming Aho–Corasick matcher agrees with naive substring
    /// search for every chunking of the input.
    #[test]
    fn streaming_matcher_equals_naive_search(
        hay in prop::collection::vec(prop_oneof![Just(b'u'), Just(b'l'), Just(b't'), Just(b'r'),
                                                 Just(b'a'), Just(b's'), Just(b'f'), Just(b'x')], 0..128),
        cut in 0usize..128,
    ) {
        let rules = RuleSet::empty().with_keyword("ultrasurf").with_keyword("tras");
        let aut = Automaton::build(&rules);
        let naive = hay.windows(9).any(|w| w == b"ultrasurf") || hay.windows(4).any(|w| w == b"tras");
        // Whole-buffer scan.
        let whole = !aut.scan(&hay).is_empty();
        prop_assert_eq!(whole, naive);
        // Split-feed scan (same result for any split point).
        let cut = cut.min(hay.len());
        let mut m = StreamMatcher::new();
        let mut hits = m.feed(&aut, &hay[..cut]);
        hits.extend(m.feed(&aut, &hay[cut..]));
        prop_assert_eq!(!hits.is_empty(), naive);
    }

    /// DNS messages round-trip through both UDP and TCP framings.
    #[test]
    fn dns_round_trip(
        id in any::<u16>(),
        labels in prop::collection::vec("[a-z]{1,12}", 1..4),
    ) {
        let name = labels.join(".");
        let q = DnsMessage::query(id, &name);
        prop_assert_eq!(DnsMessage::decode(&q.encode()).unwrap(), q.clone());
        let (m, used) = DnsMessage::decode_tcp(&q.encode_tcp()).unwrap();
        prop_assert_eq!(&m, &q);
        prop_assert_eq!(used, q.encode_tcp().len());
        let a = DnsMessage::answer_a(&q, Ipv4Addr::new(1, 2, 3, 4), 60);
        prop_assert_eq!(DnsMessage::decode(&a.encode()).unwrap(), a);
    }

    /// Sequence-space arithmetic is a strict total order on windows
    /// narrower than 2^31.
    #[test]
    fn seq_order_sanity(a in any::<u32>(), d in 1u32..0x7fff_ffff) {
        use intang_packet::tcp::seq;
        let b = a.wrapping_add(d);
        prop_assert!(seq::lt(a, b));
        prop_assert!(seq::gt(b, a));
        prop_assert!(seq::le(a, b));
        prop_assert!(!seq::lt(b, a));
        prop_assert!(seq::in_window(a, a, 1));
        prop_assert!(!seq::in_window(b, a, d));
        prop_assert!(seq::in_window(b, a, d + 1));
    }
}
