//! Property-based invariants across the wire-format and stream-assembly
//! substrates: these are the layers every other result rests on.
//!
//! The cases are driven by a tiny self-contained SplitMix64 generator
//! (the build environment has no registry access, so no proptest); each
//! test runs a fixed number of deterministic random cases.

use intang_gfw::dpi::{Automaton, RuleSet, StreamMatcher};
use intang_packet::frag::{self, OverlapPolicy};
use intang_packet::tcp::{TcpFlags, TcpOption, TcpRepr};
use intang_packet::{dns::DnsMessage, IpProtocol, Ipv4Packet, Ipv4Repr, TcpPacket};
use intang_tcpstack::reasm::{Assembler, SegmentOverlapPolicy};
use std::net::Ipv4Addr;

/// Deterministic SplitMix64 case generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed ^ 0x5851_f42d_4c95_7f2d)
    }
    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn u32(&mut self) -> u32 {
        self.u64() as u32
    }
    fn u16(&mut self) -> u16 {
        self.u64() as u16
    }
    fn u8(&mut self) -> u8 {
        self.u64() as u8
    }
    fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }
    /// Uniform in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.u64() % n as u64) as usize
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }
    fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        let n = self.range(lo, hi);
        (0..n).map(|_| self.u8()).collect()
    }
    fn addr(&mut self) -> Ipv4Addr {
        Ipv4Addr::from(self.u32())
    }
}

fn gen_options(g: &mut Gen) -> Vec<TcpOption> {
    let n = g.below(3);
    (0..n)
        .map(|_| match g.below(5) {
            0 => TcpOption::Mss(g.u16()),
            1 => TcpOption::WindowScale(g.u8() % 15),
            2 => TcpOption::SackPermitted,
            3 => TcpOption::Timestamps {
                tsval: g.u32(),
                tsecr: g.u32(),
            },
            _ => {
                let mut sig = [0u8; 16];
                for b in &mut sig {
                    *b = g.u8();
                }
                TcpOption::Md5Sig(sig)
            }
        })
        .collect()
}

/// TCP emit → parse is the identity on every field.
#[test]
fn tcp_round_trip() {
    let mut g = Gen::new(1);
    for _ in 0..128 {
        let (src, dst) = (g.addr(), g.addr());
        let (sp, dp) = (g.u16(), g.u16());
        let (seq, ack) = (g.u32(), g.u32());
        let flags = TcpFlags(g.u8() & 0x3f);
        let window = g.u16();
        let options = gen_options(&mut g);
        let payload = g.bytes(0, 256);

        let mut repr = TcpRepr::new(sp, dp);
        repr.seq = seq;
        repr.ack = ack;
        repr.flags = flags;
        repr.window = window;
        repr.options = options.clone();
        repr.payload = payload.clone();
        let wire = repr.emit(src, dst);
        let pkt = TcpPacket::new_checked(&wire[..]).unwrap();
        assert!(pkt.verify_checksum(src, dst));
        assert_eq!(pkt.src_port(), sp);
        assert_eq!(pkt.dst_port(), dp);
        assert_eq!(pkt.seq_number(), seq);
        assert_eq!(pkt.ack_number(), ack);
        assert_eq!(pkt.flags(), flags);
        assert_eq!(pkt.window(), window);
        assert_eq!(pkt.options(), options);
        assert_eq!(pkt.payload(), &payload[..]);
    }
}

/// IPv4 emit → parse is the identity, and the checksum validates.
#[test]
fn ipv4_round_trip() {
    let mut g = Gen::new(2);
    for _ in 0..128 {
        let (src, dst) = (g.addr(), g.addr());
        let ttl = 1 + g.below(255) as u8;
        let ident = g.u16();
        let payload = g.bytes(0, 512);

        let repr = Ipv4Repr {
            ttl,
            ident,
            ..Ipv4Repr::new(src, dst, IpProtocol::Tcp)
        };
        let wire = repr.emit(&payload);
        let pkt = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert!(pkt.verify_header_checksum());
        assert!(pkt.total_len_consistent());
        assert_eq!(pkt.src_addr(), src);
        assert_eq!(pkt.dst_addr(), dst);
        assert_eq!(pkt.ttl(), ttl);
        assert_eq!(pkt.ident(), ident);
        assert_eq!(pkt.payload(), &payload[..]);
    }
}

/// Any fragmentation of a datagram reassembles to the original under
/// both overlap policies, in any delivery order.
#[test]
fn fragmentation_reassembly_identity() {
    let mut g = Gen::new(3);
    for _ in 0..128 {
        let payload = g.bytes(16, 512);
        let cuts: Vec<usize> = (0..g.below(4)).map(|_| g.range(1, 64)).collect();
        let order = g.u64();
        let last_wins = g.bool();

        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let repr = Ipv4Repr {
            ident: 7,
            ..Ipv4Repr::new(src, dst, IpProtocol::Tcp)
        };
        let wire = repr.emit(&payload);
        // 8-aligned boundaries; fragment_at ignores any outside (0, len).
        let boundaries: Vec<usize> = cuts.iter().map(|c| c * 8).collect();
        let mut frags = frag::fragment_at(&wire, &boundaries);
        // Pseudo-random shuffle (deterministic in `order`).
        let mut o = order;
        for i in (1..frags.len()).rev() {
            o = o.wrapping_mul(6364136223846793005).wrapping_add(1);
            frags.swap(i, (o as usize) % (i + 1));
        }
        let policy = if last_wins {
            OverlapPolicy::LastWins
        } else {
            OverlapPolicy::FirstWins
        };
        let out = frag::reassemble(policy, frags).expect("must complete");
        let pkt = Ipv4Packet::new_checked(&out[..]).unwrap();
        assert_eq!(pkt.payload(), &payload[..]);
        assert!(!pkt.is_fragment());
    }
}

/// Regression: a specific fragmentation case that once failed under
/// proptest (shrunken input preserved from the retired
/// `tests/properties.proptest-regressions` file). The 217-byte payload
/// with boundary cuts at 448 and 272 exercises an out-of-range second cut
/// plus a LastWins shuffle that delivered the tail fragment first.
#[test]
fn fragmentation_regression_out_of_range_cut_last_wins() {
    let payload: Vec<u8> = vec![
        0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 65, 170, 190, 59, 19, 57, 215, 126, 131, 87, 5, 19, 89, 213, 76, 52, 32, 242, 216, 225, 246, 247,
        145, 58, 86, 88, 242, 185, 84, 76, 152, 5, 171, 154, 30, 53, 242, 221, 75, 242, 229, 47, 190, 116, 201, 92, 85, 226, 64, 30, 188,
        135, 40, 203, 31, 91, 54, 94, 41, 214, 233, 246, 138, 236, 56, 17, 11, 153, 238, 243, 114, 225, 232, 90, 59, 251, 204, 32, 171,
        154, 164, 16, 7, 135, 216, 144, 175, 139, 144, 66, 28, 115, 215, 244, 3, 16, 148, 23, 134, 93, 246, 115, 227, 81, 188, 93, 5, 189,
        167, 102, 89, 218, 147, 158, 100, 193, 53, 147, 19, 70, 176, 54, 59, 168, 97, 41, 51, 83, 66, 240, 162, 182, 22, 46, 117, 1, 134,
        97, 151, 68, 237, 174, 14, 117, 171, 56, 172, 150, 232, 33, 88, 195, 194, 97, 253, 80, 45, 44, 59, 235, 230, 59, 9, 87, 115, 88,
        241, 164, 87, 85, 41, 149, 150, 41, 111, 59, 149, 2, 162, 31, 42, 135, 90, 99, 156, 149, 135, 32, 253, 152, 117, 188, 139, 16, 140,
        132, 91, 174, 52, 215, 172, 95, 210, 223, 60, 43, 62,
    ];
    let (cuts, order) = ([56usize, 34], 3269660298547634385u64);

    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let repr = Ipv4Repr {
        ident: 7,
        ..Ipv4Repr::new(src, dst, IpProtocol::Tcp)
    };
    let wire = repr.emit(&payload);
    let boundaries: Vec<usize> = cuts.iter().map(|c| c * 8).collect();
    let mut frags = frag::fragment_at(&wire, &boundaries);
    let mut o = order;
    for i in (1..frags.len()).rev() {
        o = o.wrapping_mul(6364136223846793005).wrapping_add(1);
        frags.swap(i, (o as usize) % (i + 1));
    }
    let out = frag::reassemble(OverlapPolicy::LastWins, frags).expect("must complete");
    let pkt = Ipv4Packet::new_checked(&out[..]).unwrap();
    assert_eq!(pkt.payload(), &payload[..]);
    assert!(!pkt.is_fragment());
}

/// The stream assembler delivers exactly the in-order byte stream when
/// segments don't overlap, regardless of arrival order.
#[test]
fn assembler_delivers_contiguous_stream() {
    let mut g = Gen::new(4);
    for _ in 0..128 {
        let chunks: Vec<Vec<u8>> = (0..g.range(1, 8)).map(|_| g.bytes(1, 32)).collect();
        let order = g.u64();
        let last_wins = g.bool();

        let policy = if last_wins {
            SegmentOverlapPolicy::LastWins
        } else {
            SegmentOverlapPolicy::FirstWins
        };
        let mut asm = Assembler::new(policy);
        // Compute offsets.
        let mut offsets = Vec::new();
        let mut off = 0u64;
        for c in &chunks {
            offsets.push(off);
            off += c.len() as u64;
        }
        let expected: Vec<u8> = chunks.iter().flatten().copied().collect();
        let mut idx: Vec<usize> = (0..chunks.len()).collect();
        let mut o = order;
        for i in (1..idx.len()).rev() {
            o = o.wrapping_mul(6364136223846793005).wrapping_add(1);
            idx.swap(i, (o as usize) % (i + 1));
        }
        let mut got = Vec::new();
        for &i in &idx {
            asm.insert(offsets[i], &chunks[i]);
            got.extend_from_slice(&asm.pull());
        }
        assert_eq!(got, expected);
        assert!(!asm.has_gaps());
    }
}

/// TCP stream reassembly is immune to fault-plan-style delivery schedules:
/// whatever combination of Gilbert–Elliott loss (with retransmission),
/// duplication, and reorder delay the fault layer realizes, the assembler
/// delivers exactly the byte stream an in-order run delivers.
///
/// The schedule is derived with the same primitives `intang-faults` uses
/// (`SimRng` + `GilbertElliott`), so this pins the invariant the fault
/// matrix rests on: link chaos may slow or kill a trial, but it can never
/// corrupt the bytes a surviving stream carries.
#[test]
fn assembler_is_immune_to_fault_schedules() {
    use intang_netsim::{GilbertElliott, SimRng};
    let mut g = Gen::new(9);
    for case in 0..96u64 {
        let chunks: Vec<Vec<u8>> = (0..g.range(2, 10)).map(|_| g.bytes(1, 32)).collect();
        let last_wins = g.bool();
        let mut offsets = Vec::new();
        let mut off = 0u64;
        for c in &chunks {
            offsets.push(off);
            off += c.len() as u64;
        }
        let expected: Vec<u8> = chunks.iter().flatten().copied().collect();

        // Realize a delivery schedule under a bursty channel: each segment
        // is retransmitted until a copy survives, surviving copies pick up
        // jittered arrival times (reordering), and some are duplicated.
        let mut rng = SimRng::seed_from(0xFA17_0000 ^ case);
        let mut ge = GilbertElliott::new(0.2, 0.3, 0.05, 0.7);
        let mut arrivals: Vec<(u64, u64, usize)> = Vec::new(); // (time, tiebreak, idx)
        let mut tiebreak = 0u64;
        for i in 0..chunks.len() {
            let base = 1_000 * i as u64;
            let mut attempt = 0u64;
            loop {
                let sent_at = base + attempt * 700; // crude RTO
                if ge.step(&mut rng) {
                    attempt += 1;
                    continue; // this copy died on the link; retransmit
                }
                let mut at = sent_at + 100;
                if rng.chance(0.3) {
                    at += rng.range_u64(1, 2_000); // reorder delay
                }
                arrivals.push((at, tiebreak, i));
                tiebreak += 1;
                if rng.chance(0.2) {
                    arrivals.push((at + rng.range_u64(1, 300), tiebreak, i)); // duplicate
                    tiebreak += 1;
                }
                break;
            }
        }
        arrivals.sort_unstable();

        let policy = if last_wins {
            SegmentOverlapPolicy::LastWins
        } else {
            SegmentOverlapPolicy::FirstWins
        };
        let mut asm = Assembler::new(policy);
        let mut got = Vec::new();
        for &(_, _, i) in &arrivals {
            asm.insert(offsets[i], &chunks[i]);
            got.extend_from_slice(&asm.pull());
        }
        assert_eq!(got, expected, "case {case}: fault schedule corrupted the stream");
        assert!(!asm.has_gaps(), "case {case}");
    }
}

/// The streaming Aho–Corasick matcher agrees with naive substring search
/// for every chunking of the input.
#[test]
fn streaming_matcher_equals_naive_search() {
    let alphabet = b"ultrasfx";
    let rules = RuleSet::empty().with_keyword("ultrasurf").with_keyword("tras");
    let aut = Automaton::build(&rules);
    let mut g = Gen::new(5);
    for _ in 0..256 {
        let hay: Vec<u8> = (0..g.below(128)).map(|_| alphabet[g.below(alphabet.len())]).collect();
        let naive = hay.windows(9).any(|w| w == b"ultrasurf") || hay.windows(4).any(|w| w == b"tras");
        // Whole-buffer scan.
        let whole = !aut.scan(&hay).is_empty();
        assert_eq!(whole, naive);
        // Split-feed scan (same result for any split point).
        let cut = g.below(129).min(hay.len());
        let mut m = StreamMatcher::new();
        let mut hits = m.feed(&aut, &hay[..cut]);
        hits.extend(m.feed(&aut, &hay[cut..]));
        assert_eq!(!hits.is_empty(), naive);
    }
}

/// The dense-table automaton reports the same `DetectionKind` sequence as
/// a naive substring scanner, for patterns split across arbitrary `feed()`
/// boundaries (not just one cut).
#[test]
fn dense_automaton_matches_naive_scanner_across_arbitrary_splits() {
    use intang_gfw::dpi::{DetectionKind, Rule};
    // Overlapping patterns with four distinct kinds, so suffix matches via
    // fail links and per-call dedup are both exercised.
    let patterns: Vec<(Vec<u8>, DetectionKind)> = vec![
        (b"ultrasurf".to_vec(), DetectionKind::HttpKeyword),
        (b"tras".to_vec(), DetectionKind::Domain),
        (b"asu".to_vec(), DetectionKind::TorHandshake),
        (b"rf".to_vec(), DetectionKind::VpnHandshake),
    ];
    let rules = RuleSet {
        rules: patterns
            .iter()
            .map(|(p, k)| Rule {
                pattern: p.clone(),
                kind: *k,
            })
            .collect(),
    };
    let aut = Automaton::build(&rules);
    let alphabet = b"ultrasfx";
    let mut g = Gen::new(8);
    for _ in 0..256 {
        let hay: Vec<u8> = (0..g.below(160)).map(|_| alphabet[g.below(alphabet.len())]).collect();

        // Naive reference: at every end position, the kinds of the patterns
        // ending there, in rule order (plain substring comparison, no
        // automaton involved).
        let kinds_at: Vec<Vec<DetectionKind>> = (0..hay.len())
            .map(|i| {
                patterns
                    .iter()
                    .filter(|(p, _)| i + 1 >= p.len() && hay[i + 1 - p.len()..=i] == p[..])
                    .map(|(_, k)| *k)
                    .collect()
            })
            .collect();

        // Random segmentation into arbitrarily many feeds (empty allowed).
        let mut bounds: Vec<usize> = (0..g.below(8)).map(|_| g.below(hay.len() + 1)).collect();
        bounds.push(0);
        bounds.push(hay.len());
        bounds.sort_unstable();

        let mut m = StreamMatcher::new();
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            let got = m.feed(&aut, &hay[a..b]);
            // Expected: kinds from positions [a, b), deduplicated within
            // the feed call in first-appearance order.
            let mut expected: Vec<DetectionKind> = Vec::new();
            for ks in &kinds_at[a..b] {
                for k in ks {
                    if !expected.contains(k) {
                        expected.push(*k);
                    }
                }
            }
            assert_eq!(got, expected, "hay={hay:?} segment {a}..{b}");
        }
    }
}

/// DNS messages round-trip through both UDP and TCP framings.
#[test]
fn dns_round_trip() {
    let mut g = Gen::new(6);
    for _ in 0..128 {
        let id = g.u16();
        let labels: Vec<String> = (0..g.range(1, 4))
            .map(|_| {
                let n = g.range(1, 13);
                (0..n).map(|_| (b'a' + (g.below(26) as u8)) as char).collect()
            })
            .collect();
        let name = labels.join(".");
        let q = DnsMessage::query(id, &name);
        assert_eq!(DnsMessage::decode(&q.encode()).unwrap(), q.clone());
        let (m, used) = DnsMessage::decode_tcp(&q.encode_tcp()).unwrap();
        assert_eq!(&m, &q);
        assert_eq!(used, q.encode_tcp().len());
        let a = DnsMessage::answer_a(&q, Ipv4Addr::new(1, 2, 3, 4), 60);
        assert_eq!(DnsMessage::decode(&a.encode()).unwrap(), a);
    }
}

/// Sequence-space arithmetic is a strict total order on windows narrower
/// than 2^31.
#[test]
fn seq_order_sanity() {
    use intang_packet::tcp::seq;
    let mut g = Gen::new(7);
    for _ in 0..256 {
        let a = g.u32();
        let d = 1 + (g.u32() % 0x7fff_fffe);
        let b = a.wrapping_add(d);
        assert!(seq::lt(a, b));
        assert!(seq::gt(b, a));
        assert!(seq::le(a, b));
        assert!(!seq::lt(b, a));
        assert!(seq::in_window(a, a, 1));
        assert!(!seq::in_window(b, a, d));
        assert!(seq::in_window(b, a, d + 1));
    }
}

/// The hierarchical timing wheel pops in exactly `(time, insertion-seq)`
/// order — the contract the old `BinaryHeap` queue provided and that the
/// golden traces and determinism suite rest on. Random interleavings of
/// pushes (normal, same-time ties, past-due, and beyond-horizon overflow
/// times) and pops are compared against a reference heap step by step.
#[test]
fn event_queue_matches_reference_heap() {
    use intang_netsim::event::{Event, EventQueue};
    use intang_netsim::Instant;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let token_of = |e: Event| match e {
        Event::Timer { token, .. } => token,
        _ => unreachable!("only timers are pushed"),
    };

    for case in 0..200u64 {
        let mut g = Gen::new(0xa11ce ^ (case << 8));
        let mut q = EventQueue::new();
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut recent: Vec<u64> = Vec::new();
        let mut seq = 0u64;
        for _ in 0..g.range(1, 150) {
            if reference.is_empty() || g.below(5) < 3 {
                let at = match g.below(10) {
                    // Beyond the 2^36 µs wheel horizon (overflow list).
                    0 => 1 + (g.u64() >> g.below(24)),
                    // Time zero / far in the past of anything popped so far.
                    1 => g.u64() % 3,
                    // Reuse an earlier time: exercises FIFO tie-breaking.
                    2 | 3 if !recent.is_empty() => recent[g.below(recent.len())],
                    // Ordinary microsecond-scale times.
                    _ => g.u64() % 1_000_000,
                };
                recent.push(at);
                q.push(Instant(at), Event::Timer { elem: 0, token: seq });
                reference.push(Reverse((at, seq)));
                seq += 1;
            } else {
                let Reverse((want_at, want_seq)) = reference.pop().expect("checked non-empty");
                let (got_at, ev) = q.pop().expect("wheel agrees queue is non-empty");
                assert_eq!((got_at.0, token_of(ev)), (want_at, want_seq), "case {case}");
            }
            assert_eq!(
                q.peek_time().map(|t| t.0),
                reference.peek().map(|Reverse((at, _))| *at),
                "case {case}"
            );
            assert_eq!(q.len(), reference.len(), "case {case}");
        }
        while let Some(Reverse((want_at, want_seq))) = reference.pop() {
            let (got_at, ev) = q.pop().expect("wheel drains with reference");
            assert_eq!((got_at.0, token_of(ev)), (want_at, want_seq), "case {case} drain");
        }
        assert!(q.is_empty());
        assert_eq!(q.pop().map(|_| ()), None);
    }
}

/// Copy-on-write isolation: a cloned wire (the censor tap's "copy", a
/// link-level duplicate) shares its buffer with the original, but any
/// mutation of either side — TTL decrements, header edits, payload writes —
/// must never show through to the other.
#[test]
fn wire_clone_mutations_never_alias() {
    use intang_packet::{PacketBuilder, Wire};

    let mut g = Gen::new(0xc0_57);
    for case in 0..200 {
        let payload = g.bytes(0, 600);
        let wire: Wire = PacketBuilder::tcp(g.addr(), g.addr(), g.u16(), g.u16())
            .flags(TcpFlags::PSH_ACK)
            .seq(g.u32())
            .ttl(2 + g.u8() % 60)
            .payload(&payload)
            .build();
        let original = wire.to_vec();

        let mut dup = wire.clone();
        assert_eq!(dup.ref_count(), 2, "clone shares the buffer");
        // Prime the shared header cache, as the censor tap would.
        let before = dup.headers();

        // Mutate the duplicate three different ways.
        match case % 3 {
            0 => {
                dup.decrement_ttl(1 + g.u8() % 4);
            }
            1 => {
                let len = dup.len();
                dup.bytes_mut()[len - 1] ^= 0xff;
            }
            _ => {
                dup.vec_mut().extend_from_slice(b"trailing-junk");
            }
        }

        assert_eq!(
            &wire[..],
            &original[..],
            "case {case}: mutation of the duplicate leaked into the original"
        );
        assert_ne!(
            &dup[..],
            &original[..],
            "case {case}: the mutation itself must be visible on the duplicate"
        );
        assert_eq!(wire.ref_count(), 1, "COW unshared the buffers");
        assert_eq!(wire.headers(), before, "the original's cached index survives the clone's mutation");
    }
}

/// End-to-end COW: an on-path tap (the censor) holds a clone of every
/// packet it forwards; the downstream link's routers then decrement TTL on
/// the forwarded wire. The held copies must keep their original bytes —
/// in-flight header rewrites never alias into an analyzer's buffer.
#[test]
fn held_tap_copies_survive_downstream_ttl_rewrites() {
    use intang_netsim::{Ctx, Direction, Duration, Element, Link, Simulation};
    use intang_packet::{PacketBuilder, Wire};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct Tap {
        held: Rc<RefCell<Vec<Wire>>>,
    }
    impl Element for Tap {
        fn name(&self) -> &str {
            "tap"
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
            self.held.borrow_mut().push(wire.clone());
            ctx.send(dir, wire);
        }
    }
    struct Sink {
        got: Rc<RefCell<Vec<Wire>>>,
    }
    impl Element for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
            self.got.borrow_mut().push(wire);
        }
    }

    let held = Rc::new(RefCell::new(Vec::new()));
    let got = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(11);
    sim.add_element(Box::new(Tap { held: held.clone() }));
    sim.add_link(Link::new(Duration::from_millis(1), 3));
    sim.add_element(Box::new(Sink { got: got.clone() }));

    let mut g = Gen::new(0x7a9);
    let mut originals = Vec::new();
    for i in 0..32u64 {
        let w = PacketBuilder::tcp(g.addr(), g.addr(), g.u16(), g.u16())
            .flags(TcpFlags::PSH_ACK)
            .seq(g.u32())
            .ttl(8 + g.u8() % 32)
            .payload(&g.bytes(1, 200))
            .build();
        originals.push(w.to_vec());
        sim.inject_at(0, Direction::ToServer, w, intang_netsim::Instant(i * 1_000));
    }
    sim.run_to_quiescence(10_000);

    let held = held.borrow();
    let got = got.borrow();
    assert_eq!(held.len(), 32);
    assert_eq!(got.len(), 32);
    for ((orig, held), got) in originals.iter().zip(held.iter()).zip(got.iter()) {
        assert_eq!(&held[..], &orig[..], "the tap's held copy kept its pre-rewrite bytes");
        assert_eq!(got[8], orig[8] - 3, "the delivered wire crossed 3 routers");
        assert!(
            Ipv4Packet::new_checked(&got[..]).unwrap().verify_header_checksum(),
            "TTL rewrite refreshed the header checksum"
        );
    }
}

/// Fold a `sum_words` accumulator to its 16-bit ones-complement value —
/// the only way accumulators are consumed, and hence the equivalence class
/// the wide kernel must preserve.
fn ones_fold(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// The wide-word checksum kernel agrees with the scalar reference at every
/// length 0..512, at every alignment offset (the kernel uses unaligned
/// loads — a misaligned slice must not change the sum), for random
/// incoming accumulators, and under split accumulation (summing a buffer
/// in two chunks at any even boundary equals summing it whole — the
/// pseudo-header-then-segment pattern `transport_checksum` relies on).
#[test]
fn wide_checksum_equals_scalar_at_every_length_alignment_and_split() {
    use intang_packet::checksum::{sum_words, sum_words_scalar};
    let mut g = Gen::new(0x5c5c);
    // One oversized backing buffer; slicing at `offset` exercises
    // misaligned starting addresses without UB or copies.
    let backing: Vec<u8> = (0..600).map(|_| g.u8()).collect();
    for len in 0..512usize {
        for offset in 0..4usize {
            let data = &backing[offset..offset + len];
            let acc = u32::from(g.u16()); // arbitrary carry-in
            assert_eq!(
                ones_fold(sum_words(acc, data)),
                ones_fold(sum_words_scalar(acc, data)),
                "len {len} offset {offset} acc {acc:#x}"
            );
        }
        // Split accumulation at an even cut: checksums chain across chunk
        // boundaries only at 16-bit word granularity (an odd-length chunk
        // zero-pads its last byte, which whole-buffer summation does not).
        let data = &backing[..len];
        let cut = (g.below(len + 1)) & !1;
        let whole = ones_fold(sum_words_scalar(0, data));
        let split = ones_fold(sum_words(sum_words(0, &data[..cut]), &data[cut..]));
        assert_eq!(split, whole, "len {len} cut {cut}");
    }
}

/// The DPI clean-byte skip loop is an observational no-op: against the
/// paper ruleset (whose root has no outputs, so skipping is armed),
/// `StreamMatcher::feed` must report exactly what the node-by-node
/// reference walk reports, for streams with planted patterns at random
/// positions and arbitrary segmentation across feed calls.
#[test]
fn dpi_skip_loop_equals_reference_walk_across_arbitrary_splits() {
    let aut = Automaton::build(&RuleSet::paper_default());
    let plants: [&[u8]; 4] = [b"ultrasurf", b"facebook.com", b"tras", b"no-op filler"];
    let mut g = Gen::new(0xd121);
    for _ in 0..128 {
        // Mostly clean bytes (the skip loop's fast path) with patterns —
        // and near-miss prefixes — spliced in at random points.
        let mut hay: Vec<u8> = Vec::new();
        while hay.len() < 700 {
            if g.below(5) == 0 {
                hay.extend_from_slice(plants[g.below(plants.len())]);
            } else {
                hay.extend((0..g.range(1, 40)).map(|_| b'a' + (g.u8() % 26)));
            }
        }
        let mut bounds: Vec<usize> = (0..g.below(10)).map(|_| g.below(hay.len() + 1)).collect();
        bounds.push(0);
        bounds.push(hay.len());
        bounds.sort_unstable();

        let mut fast = StreamMatcher::new();
        let mut reference = StreamMatcher::new();
        for w in bounds.windows(2) {
            let seg = &hay[w[0]..w[1]];
            assert_eq!(
                fast.feed(&aut, seg),
                reference.feed_reference(&aut, seg),
                "segment {}..{}",
                w[0],
                w[1]
            );
        }
    }
}

/// Arena recycling is invisible: a leased-and-reset object behaves exactly
/// like a fresh one (same contents from the consumer's viewpoint), the
/// recycled capacity really is reused, and the free-list never exceeds its
/// bound no matter the put pressure.
#[test]
fn arena_reuse_is_indistinguishable_from_fresh_allocation() {
    use intang_packet::arena::Arena;
    let mut g = Gen::new(0xa7e2);
    let mut arena: Arena<Vec<u8>> = Arena::new(4);
    for round in 0..200 {
        let payload = g.bytes(0, 300);
        // Consumer A: arena-leased buffer (possibly recycled, possibly
        // still holding last round's capacity).
        let mut leased = arena.take_with(Vec::new);
        assert!(leased.is_empty(), "put-side contract: objects return reset");
        leased.extend_from_slice(&payload);
        // Consumer B: fresh allocation.
        let mut fresh = Vec::new();
        fresh.extend_from_slice(&payload);
        assert_eq!(leased, fresh, "round {round}");
        let ck_leased = intang_packet::checksum::checksum(&leased);
        let ck_fresh = intang_packet::checksum::checksum(&fresh);
        assert_eq!(ck_leased, ck_fresh, "round {round}");
        leased.clear();
        arena.put(leased);
        assert!(arena.free_len() <= 4, "free-list bound violated");
    }
    // Extra puts beyond the bound are dropped, not hoarded.
    for _ in 0..10 {
        arena.put(Vec::with_capacity(64));
    }
    assert!(arena.free_len() <= 4);
}

/// The RFC 1624 incremental TTL writedown is byte-for-byte equivalent to
/// the historical path (rewrite TTL, zero the checksum field, re-sum the
/// whole header), for random headers, random option lengths, and every
/// hop count including TTL saturation at zero.
#[test]
fn incremental_ttl_writedown_matches_full_header_resum() {
    use intang_packet::Wire;
    let mut g = Gen::new(0x1624);
    for _ in 0..256 {
        let mut repr = Ipv4Repr::new(g.addr(), g.addr(), IpProtocol::Tcp);
        repr.ttl = g.u8();
        repr.ident = g.u16();
        repr.dont_fragment = g.bool();
        let bytes = repr.emit(&g.bytes(0, 64));
        let hops = (g.u8() % 5).max(1);

        // Fast path: Wire's incremental update.
        let mut fast = Wire::from_vec(bytes.clone());
        let remaining = fast.decrement_ttl(hops).expect("emitted header parses");
        assert_eq!(remaining, repr.ttl.saturating_sub(hops));

        // Reference path: full re-sum via the packet view.
        let mut slow = Ipv4Packet::new_checked(bytes).unwrap();
        slow.set_ttl(repr.ttl.saturating_sub(hops));
        slow.fill_header_checksum();

        assert_eq!(fast.to_vec(), slow.into_inner(), "ttl {} hops {hops}", repr.ttl);
        assert!(
            Ipv4Packet::new_checked(fast.to_vec()).unwrap().verify_header_checksum(),
            "incremental update left a verifiable checksum"
        );
    }
}

// ---- Metropolis sharding properties ------------------------------------
//
// The shared-world engine keys per-flow state by four-tuple and shards it
// with a pure hash. Two properties protect that design: the shard map is
// a pure function of the key, and neither the shard count nor a
// relabelling (permutation) of the flow keys may change what happens to
// any flow.

use intang_apps::metro::{shard_of, FlowOutcome};
use intang_experiments::metropolis::{build_metropolis, generate_world, MetroParams, MetroWorld};
use intang_packet::FourTuple;

fn gen_tuple(g: &mut Gen) -> FourTuple {
    FourTuple::new(g.addr(), g.u16(), g.addr(), g.u16())
}

#[test]
fn shard_assignment_is_pure_and_covers_every_shard() {
    let mut g = Gen::new(0x5a4d);
    for _ in 0..200 {
        let t = gen_tuple(&mut g);
        let shards = 1 + g.below(16) as u32;
        let s = shard_of(&t, shards);
        assert!(s < shards, "{t:?} landed outside [0, {shards})");
        assert_eq!(s, shard_of(&t, shards), "same key, same shard");
        let copy = FourTuple::new(t.src, t.src_port, t.dst, t.dst_port);
        assert_eq!(s, shard_of(&copy, shards), "purity: value-equal keys agree");
    }
    // With enough keys, every shard of a small count must be hit.
    let mut seen = [false; 8];
    for _ in 0..512 {
        seen[shard_of(&gen_tuple(&mut g), 8) as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "512 random keys must cover all 8 shards: {seen:?}");
}

/// Run a world and return `(per-flow (outcome, latency) grid, order violations)`.
fn run_metro_world(p: &MetroParams, w: &MetroWorld) -> (Vec<(FlowOutcome, u64)>, u64) {
    let (mut sim, parts) = build_metropolis(p, w);
    sim.run_until(p.horizon);
    let grid = parts.metro.results().iter().map(|r| (r.outcome, r.latency_us)).collect();
    (grid, parts.metro.order_violations())
}

#[test]
fn metropolis_outcomes_survive_shard_count_changes_and_key_permutations() {
    let mut g = Gen::new(0x6d65_7472);
    for case in 0..3u64 {
        let mut p = MetroParams::new(80, 9_000 + case);
        p.shards = 1;
        let world = generate_world(&p);
        let (reference, viol) = run_metro_world(&p, &world);
        assert_eq!(viol, 0);
        assert!(reference.iter().all(|(o, _)| *o != FlowOutcome::Pending));

        // Sharding partitions state without touching the event loop: the
        // full per-flow grid — not just the multiset — must be identical.
        for shards in [2u32, 5, 8] {
            let mut ps = p.clone();
            ps.shards = shards;
            let (grid, viol) = run_metro_world(&ps, &world);
            assert_eq!(reference, grid, "case {case}: grid changed at {shards} shards");
            assert_eq!(viol, 0, "case {case}: order violations at {shards} shards");
        }

        // Permute the flow keys: shuffling the address pools (indices in
        // the specs untouched) relabels every flow's four-tuple while
        // preserving which flows share a (client, site) pair — so the
        // interference structure, and with it the outcome multiset, must
        // be unchanged even though every key now hashes elsewhere.
        let mut permuted = MetroWorld {
            clients: world.clients.clone(),
            sites: world.sites.clone(),
            specs: world.specs.clone(),
            strategies: world.strategies.clone(),
        };
        for i in (1..permuted.clients.len()).rev() {
            permuted.clients.swap(i, g.below(i + 1));
        }
        for i in (1..permuted.sites.len()).rev() {
            permuted.sites.swap(i, g.below(i + 1));
        }
        let mut ps = p.clone();
        ps.shards = 4;
        let (grid, viol) = run_metro_world(&ps, &permuted);
        assert_eq!(viol, 0, "case {case}: order violations under permuted keys");
        let mut want: Vec<_> = reference.iter().map(|(o, _)| *o).collect();
        let mut got: Vec<_> = grid.iter().map(|(o, _)| *o).collect();
        want.sort_unstable_by_key(|o| *o as u8);
        got.sort_unstable_by_key(|o| *o as u8);
        assert_eq!(want, got, "case {case}: outcome multiset changed under key permutation");
    }
}
