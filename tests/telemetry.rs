//! Telemetry subsystem integration tests: deterministic metrics merging
//! across worker counts, §5 failure-vector totality on the paper-default
//! scenarios, trace-overflow accounting, and JSONL export shape.

use intang_core::{Discrepancy, StrategyKind};
use intang_experiments::runner::{overall, sweep_with_threads, SweepConfig};
use intang_experiments::scenario::Scenario;
use intang_experiments::telemetry::TelemetrySink;
use intang_experiments::trial::{build_http_sim, TrialSpec};
use intang_netsim::Instant;
use intang_telemetry::{Counter, FailureVector, HistId, MetricsSheet};

fn strategies() -> Vec<Option<StrategyKind>> {
    vec![
        Some(StrategyKind::NoStrategy),
        Some(StrategyKind::InOrderOverlap(Discrepancy::SmallTtl)),
        Some(StrategyKind::ImprovedTeardown),
        Some(StrategyKind::TcbCreationResyncDesync),
        None, // adaptive
    ]
}

/// The merged metrics sheet (and the diagnosis stream) must be
/// byte-identical between a serial and a 4-worker sweep — same guarantee
/// the executor already gives for the outcome rows.
#[test]
fn parallel_sweep_metrics_are_byte_identical_to_serial() {
    let scenario = Scenario::smoke(2017);
    for strategy in [Some(StrategyKind::NoStrategy), Some(StrategyKind::ImprovedTeardown), None] {
        let cfg = SweepConfig::new(strategy, true, 2, 2017);
        let serial = sweep_with_threads(&scenario, &cfg, 1);
        let parallel = sweep_with_threads(&scenario, &cfg, 4);
        assert_eq!(serial.rows, parallel.rows);
        assert_eq!(serial.events, parallel.events);
        assert_eq!(serial.metrics, parallel.metrics, "metrics diverged for {strategy:?}");
        assert_eq!(serial.diagnoses, parallel.diagnoses, "diagnoses diverged for {strategy:?}");
        assert!(!serial.metrics.is_zero());
    }
}

/// Every unsuccessful trial on the paper-default scenarios must land in a
/// concrete §5 vector: exactly one diagnosis per failure, zero
/// `unclassified`.
#[test]
fn every_failed_trial_gets_exactly_one_section5_vector() {
    let scenario = Scenario::smoke(2017);
    for strategy in strategies() {
        let cfg = SweepConfig::new(strategy, true, 3, 2017);
        let run = sweep_with_threads(&scenario, &cfg, 2);
        let agg = overall(&run.rows);
        let failures = u64::from(agg.failure1) + u64::from(agg.failure2);
        assert_eq!(
            run.diagnoses.len() as u64,
            failures,
            "one diagnosis per failed trial for {strategy:?}"
        );
        let unclassified = run.diagnoses.iter().filter(|d| d.vector == FailureVector::Unclassified).count();
        assert_eq!(unclassified, 0, "unclassified failures for {strategy:?}: {:?}", run.diagnoses);
        // The sheet's outcome counters agree with the aggregate rows.
        assert_eq!(run.metrics.counter(Counter::TrialsRun), run.trials);
        assert_eq!(run.metrics.counter(Counter::TrialSuccess), u64::from(agg.success));
        assert_eq!(run.metrics.counter(Counter::TrialFailure1), u64::from(agg.failure1));
        assert_eq!(run.metrics.counter(Counter::TrialFailure2), u64::from(agg.failure2));
        assert_eq!(run.metrics.hist(HistId::TrialEvents).count, run.trials);
        assert_eq!(run.metrics.hist(HistId::TrialEvents).sum, run.events);
    }
}

/// Events recorded past the trace cap are counted, and the count flows
/// into the merged metrics sheet as `trace_events_dropped`.
#[test]
fn trace_overflow_is_counted_in_the_metrics_sheet() {
    let scenario = Scenario::smoke(2017);
    let site = &scenario.websites[0];
    let spec = TrialSpec::new(&scenario.vantage_points[0], site, Some(StrategyKind::NoStrategy), true, 42);
    let (mut sim, _parts) = build_http_sim(&spec);
    sim.trace.enable();
    sim.trace.set_cap(8);
    sim.run_until(Instant(25_000_000));
    assert!(sim.trace.dropped() > 0, "a full trial should overflow an 8-event cap");
    assert_eq!(sim.trace.events().len(), 8);
    let mut m = MetricsSheet::new();
    sim.export_metrics(&mut m);
    assert_eq!(m.counter(Counter::TraceEventsDropped), sim.trace.dropped());
}

/// `--telemetry` output is line-oriented JSON: one metrics record per
/// sweep, then one diagnosis record per failed trial.
#[test]
fn jsonl_export_emits_one_metrics_record_and_one_diagnosis_per_failure() {
    let scenario = Scenario::smoke(2017);
    let cfg = SweepConfig::new(Some(StrategyKind::NoStrategy), true, 2, 2017);
    let run = sweep_with_threads(&scenario, &cfg, 2);
    let agg = overall(&run.rows);
    assert!(agg.failure1 + agg.failure2 > 0, "no-strategy + keyword must fail sometimes");

    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("telemetry_export_test.jsonl");
    let mut sink = TelemetrySink::create(path.to_str().unwrap()).unwrap();
    sink.record_sweep("test", "no-strategy", &run).unwrap();
    drop(sink);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1 + run.diagnoses.len());
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "not a JSON object: {line}");
        assert_eq!(line.matches('"').count() % 2, 0, "unbalanced quotes: {line}");
    }
    assert!(lines[0].contains("\"record\":\"metrics\""));
    assert!(lines[0].contains("\"counters\":{"));
    assert!(lines[0].contains("\"trials_run\":"));
    assert!(lines[0].contains("\"strategy_outcomes\":{"));
    for line in &lines[1..] {
        assert!(line.contains("\"record\":\"diagnosis\""));
        assert!(line.contains("\"vector\":"));
    }
}

/// Every exported record — metrics, diagnosis, and series alike — stamps
/// the writer's schema version, so mixed files remain parseable after the
/// format evolves.
#[test]
fn every_jsonl_record_carries_the_schema_version() {
    let scenario = Scenario::smoke(2017);
    let cfg = SweepConfig::new(Some(StrategyKind::NoStrategy), true, 2, 2017);
    // Enable gauge sampling so the series writer is exercised too.
    let prev = intang_telemetry::series::set_thread(Some(true));
    let run = sweep_with_threads(&scenario, &cfg, 2);
    intang_telemetry::series::set_thread(prev);
    assert!(run.series.is_some(), "series enabled for this sweep");
    assert!(!run.diagnoses.is_empty(), "no-strategy + keyword must fail sometimes");

    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("telemetry_schema_version_test.jsonl");
    let mut sink = TelemetrySink::create(path.to_str().unwrap()).unwrap();
    sink.record_sweep("test", "no-strategy", &run).unwrap();
    drop(sink);

    let text = std::fs::read_to_string(&path).unwrap();
    let stamp = format!("\"schema_version\":{}", intang_telemetry::SCHEMA_VERSION);
    let mut kinds = std::collections::HashSet::new();
    for line in text.lines() {
        assert!(line.contains(&stamp), "record without a schema stamp: {line}");
        for kind in ["metrics", "diagnosis", "series"] {
            if line.contains(&format!("\"record\":\"{kind}\"")) {
                kinds.insert(kind);
            }
        }
    }
    assert_eq!(kinds.len(), 3, "expected all three record kinds, saw {kinds:?}");
}

/// Sub-experiments of a multi-experiment binary (`all`) each open their
/// own sink against the same `--telemetry` path: the second open must
/// append, not wipe out the first sub-experiment's records.
#[test]
fn reopening_the_same_telemetry_path_appends_instead_of_truncating() {
    let scenario = Scenario::smoke(2017);
    let cfg = SweepConfig::new(Some(StrategyKind::NoStrategy), true, 1, 2017);
    let run = sweep_with_threads(&scenario, &cfg, 1);

    let path = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("telemetry_reopen_test.jsonl");
    let path = path.to_str().unwrap();
    let mut first = TelemetrySink::create(path).unwrap();
    first.record_sweep("exp-a", "sweep", &run).unwrap();
    drop(first);
    let mut second = TelemetrySink::create(path).unwrap();
    second.record_sweep("exp-b", "sweep", &run).unwrap();
    drop(second);

    let text = std::fs::read_to_string(path).unwrap();
    assert_eq!(text.lines().count(), 2 * (1 + run.diagnoses.len()));
    assert_eq!(text.matches("\"record\":\"metrics\"").count(), 2);
    assert!(
        text.contains("\"experiment\":\"exp-a\""),
        "first sink's records survived the reopen"
    );
    assert!(text.contains("\"experiment\":\"exp-b\""));
}
