//! Cross-flow interference suite: hand-built metropolis worlds where the
//! *shared* censor state — one blacklist, one TCB table — couples flows
//! that never exchange a byte. Every expectation below is hand-computed
//! from the topology (50 µs + 1 ms + 2 ms links → ~6 ms RTT, detection of
//! a t=0 keyword flow lands within ~10 ms) and the configured censor
//! parameters (90 s pair blacklist, `max_tcbs` + Oldest eviction).

use intang_apps::metro::{FlowOutcome, FlowSpec};
use intang_core::StrategyKind;
use intang_experiments::metropolis::{
    build_metropolis, run_metropolis_domains_world, MetroDomainsRun, MetroParams, MetroParts, MetroWorld,
};
use intang_gfw::EvictionPolicy;
use intang_netsim::{Duration, Instant};
use std::net::Ipv4Addr;

/// A hand-placed world: every flow runs bare (`NoStrategy`), so the
/// censor's reactions are the only variable. Flows are
/// `(start_us, client_idx, site_idx, keyword, request_delay_us)`.
fn world(clients: u32, sites: u32, flows: &[(u64, u32, u32, bool, u64)]) -> MetroWorld {
    assert!(flows.windows(2).all(|w| w[0].0 <= w[1].0), "flows must be start-sorted");
    MetroWorld {
        clients: (0..clients).map(|i| Ipv4Addr::new(10, 1, 0, (i + 1) as u8)).collect(),
        sites: (0..sites).map(|i| Ipv4Addr::new(203, 0, 113, (i + 1) as u8)).collect(),
        specs: flows
            .iter()
            .enumerate()
            .map(|(id, &(start, client, site, keyword, delay))| FlowSpec {
                start: Instant(start),
                client,
                site,
                isn: 0x1000_0000 + id as u32,
                keyword,
                request_delay: Duration::from_micros(delay),
            })
            .collect(),
        strategies: vec![StrategyKind::NoStrategy; flows.len()],
    }
}

/// The same world under the parallel loop: sharded censor/shim lanes,
/// `domains` event domains on `workers` threads.
fn run_domains(w: &MetroWorld, max_tcbs: usize, horizon: Instant, domains: u32, workers: usize) -> (Vec<FlowOutcome>, MetroDomainsRun) {
    let mut p = MetroParams::new(w.specs.len() as u32, 42);
    p.shards = 4;
    p.max_tcbs = max_tcbs;
    p.eviction = EvictionPolicy::Oldest;
    p.horizon = horizon;
    let run = run_metropolis_domains_world(&p, w, domains, workers);
    let outcomes = run.run.results.iter().map(|r| r.outcome).collect();
    (outcomes, run)
}

fn run(w: &MetroWorld, max_tcbs: usize, horizon: Instant) -> (Vec<FlowOutcome>, MetroParts) {
    let mut p = MetroParams::new(w.specs.len() as u32, 42);
    p.shards = 4;
    p.max_tcbs = max_tcbs;
    p.eviction = EvictionPolicy::Oldest;
    p.horizon = horizon;
    let (mut sim, parts) = build_metropolis(&p, w);
    sim.run_until(horizon);
    let outcomes = parts.metro.results().iter().map(|r| r.outcome).collect();
    (outcomes, parts)
}

#[test]
fn detection_on_one_flow_resets_a_later_flow_on_the_same_pair() {
    // Flow 0 carries the keyword and is detected within ~10 ms, putting
    // (client 0, site 0) on the blacklist. Flow 1 — benign, same pair,
    // starting 100 ms later — draws the sustained-disruption volley and
    // dies as collateral, having shared nothing with flow 0 but addresses.
    let w = world(
        1,
        1,
        &[
            (0, 0, 0, true, 0),        // keyword: detected, reset
            (100_000, 0, 0, false, 0), // benign, same (src, dst): collateral reset
        ],
    );
    let (outcomes, parts) = run(&w, 65_536, Instant(5_000_000));
    assert_eq!(outcomes[0], FlowOutcome::Reset, "keyword flow is detected and reset");
    assert_eq!(outcomes[1], FlowOutcome::Reset, "benign flow on the blacklisted pair is collateral");
    assert!(
        parts.gfw.blacklist_collateral_resets() > 0,
        "the censor attributes flow 1's resets to collateral (got 0)"
    );
}

#[test]
fn benign_flow_from_a_different_client_is_untouched() {
    // Same censor, same site, same instant as the collateral flow — but a
    // different client address. The blacklist keys on the (src, dst)
    // pair, so this flow must complete normally.
    let w = world(
        2,
        1,
        &[
            (0, 0, 0, true, 0),        // keyword: detected, blacklists (client0, site0)
            (100_000, 0, 0, false, 0), // collateral on the blacklisted pair
            (100_000, 1, 0, false, 0), // different client, same site: untouched
        ],
    );
    let (outcomes, _parts) = run(&w, 65_536, Instant(5_000_000));
    assert_eq!(outcomes[1], FlowOutcome::Reset, "same-pair flow is collateral");
    assert_eq!(outcomes[2], FlowOutcome::Success, "different-client flow sails through");
}

#[test]
fn blacklist_expiry_at_ninety_seconds_restores_the_pair() {
    // The pair blacklist lasts 90 s from the detection (~t=10 ms). A
    // benign retry at t=50 s is still inside the window and dies; a retry
    // at t=95 s is past expiry and succeeds.
    let w = world(
        1,
        1,
        &[
            (0, 0, 0, true, 0),           // detected at ~10 ms
            (50_000_000, 0, 0, false, 0), // 50 s < 90 s: still blacklisted
            (95_000_000, 0, 0, false, 0), // 95 s > 90.01 s: expired, succeeds
        ],
    );
    let (outcomes, _parts) = run(&w, 65_536, Instant(120_000_000));
    assert_eq!(outcomes[1], FlowOutcome::Reset, "retry inside the 90 s window is collateral");
    assert_eq!(outcomes[2], FlowOutcome::Success, "retry after expiry completes normally");
}

#[test]
fn tcb_eviction_under_capacity_pressure_degrades_detection_exactly_as_configured() {
    // Flow 0 handshakes at t=0 but holds its keyword request for 200 ms.
    // Flows 1 and 2 handshake at 20/22 ms and idle long enough that both
    // their TCBs are live when the third SYN arrives. With max_tcbs = 2
    // and Oldest eviction, that SYN evicts flow 0's TCB — and since the
    // censor never rebuilds state mid-stream, flow 0's keyword request is
    // never scanned: capacity pressure converts a Reset into a Success.
    let flows: &[(u64, u32, u32, bool, u64)] = &[
        (0, 0, 0, true, 200_000),       // keyword, request delayed past the pressure
        (20_000, 1, 1, false, 100_000), // filler: holds a TCB slot
        (22_000, 2, 1, false, 100_000), // filler: its SYN forces the eviction
    ];
    let w = world(3, 2, flows);

    let (outcomes, parts) = run(&w, 2, Instant(5_000_000));
    assert_eq!(parts.gfw.tcbs_evicted(), 1, "exactly one eviction: flow 0's TCB, the oldest");
    assert_eq!(outcomes[0], FlowOutcome::Success, "evicted TCB means the keyword goes unscanned");
    assert_eq!(outcomes[1], FlowOutcome::Success);
    assert_eq!(outcomes[2], FlowOutcome::Success);

    // Control: ample capacity, identical world — detection works again.
    let (outcomes, parts) = run(&w, 65_536, Instant(5_000_000));
    assert_eq!(parts.gfw.tcbs_evicted(), 0, "no pressure, no evictions");
    assert_eq!(outcomes[0], FlowOutcome::Reset, "with its TCB intact the keyword flow is detected");
    assert_eq!(outcomes[1], FlowOutcome::Success);
    assert_eq!(outcomes[2], FlowOutcome::Success);
}

#[test]
fn interference_expectations_hold_unchanged_under_the_parallel_loop() {
    // The blacklist couples flows on the same (src, dst) pair — and
    // `pair_shard` keys on exactly that pair, so the coupling is always
    // intra-lane and the hand-computed expectations above carry over to
    // the sharded-state parallel loop verbatim, at every domain count.
    let w = world(
        2,
        1,
        &[
            (0, 0, 0, true, 0),           // keyword: detected, blacklists (client0, site0)
            (100_000, 0, 0, false, 0),    // same pair: collateral reset
            (100_000, 1, 0, false, 0),    // different client: untouched
            (50_000_000, 0, 0, false, 0), // 50 s < 90 s: still blacklisted
            (95_000_000, 0, 0, false, 0), // 95 s > 90.01 s: expired, succeeds
        ],
    );
    let expected = vec![
        FlowOutcome::Reset,
        FlowOutcome::Reset,
        FlowOutcome::Success,
        FlowOutcome::Reset,
        FlowOutcome::Success,
    ];
    for (domains, workers) in [(1u32, 1usize), (2, 2), (4, 4)] {
        let (outcomes, run) = run_domains(&w, 65_536, Instant(120_000_000), domains, workers);
        assert_eq!(
            outcomes, expected,
            "interference outcomes differ at {domains} domains, {workers} workers"
        );
        assert!(
            run.run.collateral_resets > 0,
            "collateral is attributed at {domains} domains (got 0)"
        );
        assert_eq!(run.run.order_violations, 0);
    }
}

#[test]
fn per_lane_eviction_quota_degrades_detection_identically_at_every_domain_count() {
    // Sharded state partitions `max_tcbs` deterministically: 8 TCBs over
    // 4 lanes is a quota of 2 per lane. All three flows share one
    // (src, dst) pair, hence one lane: flow 0 handshakes first and holds
    // its keyword for 200 ms; fillers 1 and 2 handshake at 20/22 ms, and
    // the third SYN finds the lane at quota and evicts flow 0's TCB — the
    // keyword goes unscanned. The arithmetic is per-lane, so the outcome
    // is identical whether the lane's shard runs in 1, 2, or 4 domains.
    let flows: &[(u64, u32, u32, bool, u64)] = &[
        (0, 0, 0, true, 200_000),       // keyword, request delayed past the pressure
        (20_000, 0, 0, false, 100_000), // filler: holds a lane TCB slot
        (22_000, 0, 0, false, 100_000), // filler: its SYN forces the lane eviction
    ];
    let w = world(1, 1, flows);

    for (domains, workers) in [(1u32, 1usize), (2, 2), (4, 4)] {
        let (outcomes, run) = run_domains(&w, 8, Instant(5_000_000), domains, workers);
        let tag = format!("{domains} domains, {workers} workers");
        assert_eq!(run.run.tcbs_evicted, 1, "exactly one lane eviction at {tag}");
        assert_eq!(
            outcomes[0],
            FlowOutcome::Success,
            "evicted TCB means the keyword goes unscanned at {tag}"
        );
        assert_eq!(outcomes[1], FlowOutcome::Success, "{tag}");
        assert_eq!(outcomes[2], FlowOutcome::Success, "{tag}");

        // Control: ample per-lane quota, identical world — detection works.
        let (outcomes, run) = run_domains(&w, 65_536, Instant(5_000_000), domains, workers);
        assert_eq!(run.run.tcbs_evicted, 0, "no pressure, no evictions at {tag}");
        assert_eq!(
            outcomes[0],
            FlowOutcome::Reset,
            "with its TCB intact the keyword flow is detected at {tag}"
        );
        assert_eq!(outcomes[1], FlowOutcome::Success, "{tag}");
        assert_eq!(outcomes[2], FlowOutcome::Success, "{tag}");
    }
}
