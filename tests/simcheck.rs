//! Simcheck self-tests: one injected violation per invariant family, the
//! whitelisted bad-checksum discrepancy, determinism with checking on, the
//! shrinker end-to-end, and full trials with ISNs pinned at the seq-number
//! wraparound boundary.
//!
//! Simcheck state is thread-local, so these tests do not interfere with
//! each other even when the harness runs them concurrently.

use intang_core::StrategyKind;
use intang_experiments::runner::{run_cell_telemetry, sweep_with_threads, SweepConfig};
use intang_experiments::scenario::Scenario;
use intang_experiments::trial::{run_http_trial, Outcome, TrialSpec};
use intang_middlebox::{FieldFilter, FilterSpec};
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::{FourTuple, PacketBuilder, TcpFlags};
use intang_simcheck::Family;
use intang_tcpstack::reasm::{Assembler, SegmentOverlapPolicy};
use std::net::Ipv4Addr;

/// Run `f` with simcheck force-enabled on this thread, draining any stale
/// violations first and restoring the previous override after.
fn with_simcheck<T>(f: impl FnOnce() -> T) -> T {
    let prev = intang_simcheck::set_thread(Some(true));
    let _ = intang_simcheck::take_violations();
    let out = f();
    intang_simcheck::set_thread(prev);
    out
}

fn test_packet() -> intang_packet::Wire {
    PacketBuilder::tcp(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 9, 0, 1), 40_000, 80)
        .seq(1000)
        .ack(2000)
        .flags(TcpFlags::PSH_ACK)
        .payload(b"hello")
        .build()
}

/// A two-element pass-through path; emissions from element 0 cross one link.
fn mini_sim(seed: u64) -> Simulation {
    let mut sim = Simulation::new(seed);
    sim.add_element(Box::new(FieldFilter::new("a", FilterSpec::passes_everything())));
    sim.add_link(Link::new(Duration::from_micros(10), 0));
    sim.add_element(Box::new(FieldFilter::new("b", FilterSpec::passes_everything())));
    sim
}

#[test]
fn wire_integrity_corruption_hook_is_caught() {
    with_simcheck(|| {
        intang_simcheck::begin_trial(99);
        intang_simcheck::arm_corruption(4);
        let s = Scenario::smoke(2017);
        let mut spec = TrialSpec::new(&s.vantage_points[0], &s.websites[0], Some(StrategyKind::NoStrategy), false, 99);
        spec.route_change_prob = 0.0;
        let _ = run_http_trial(&spec);
        intang_simcheck::disarm_corruption();
        let vs = intang_simcheck::take_violations();
        assert!(
            vs.iter().any(|v| v.family == Family::WireIntegrity),
            "corrupting the 4th transmission must trip wire integrity: {vs:?}"
        );
        assert!(vs.iter().all(|v| v.trial_seed == Some(99)), "violations carry the announced seed");
    });
}

#[test]
fn header_index_disagreement_is_caught_on_transmit() {
    with_simcheck(|| {
        intang_simcheck::begin_trial(1);
        let mut sim = mini_sim(5);
        let mut w = test_packet();
        assert!(w.headers().is_some(), "populate the cache first");
        // Flip a source-port byte behind the cache's back: the memoized
        // index now disagrees with the raw bytes.
        w.poke_preserving_cache_for_test(20, 0xEE);
        sim.inject_at(0, Direction::ToServer, w, Instant::ZERO);
        sim.run_to_quiescence(100);
        let vs = intang_simcheck::take_violations();
        assert!(
            vs.iter().any(|v| v.family == Family::HeaderIndex),
            "stale header cache must be flagged: {vs:?}"
        );
    });
}

#[test]
fn conservation_skew_is_caught_by_reconcile() {
    with_simcheck(|| {
        intang_simcheck::begin_trial(2);
        let mut sim = mini_sim(5);
        sim.inject_at(0, Direction::ToServer, test_packet(), Instant::ZERO);
        sim.run_to_quiescence(100);
        sim.simcheck_reconcile();
        assert!(intang_simcheck::take_violations().is_empty(), "clean run reconciles");
        sim.simcheck_skew_for_test();
        sim.simcheck_reconcile();
        let vs = intang_simcheck::take_violations();
        assert!(
            vs.iter().any(|v| v.family == Family::Conservation),
            "a phantom emission must fail conservation: {vs:?}"
        );
    });
}

#[test]
fn time_regression_is_caught() {
    with_simcheck(|| {
        intang_simcheck::begin_trial(3);
        let mut sim = mini_sim(5);
        sim.run_until(Instant(1_000));
        // An event injected in the past: the queue yields it after the
        // clock has already advanced beyond its timestamp.
        sim.inject_at(0, Direction::ToServer, test_packet(), Instant(10));
        sim.step();
        let vs = intang_simcheck::take_violations();
        assert!(
            vs.iter().any(|v| v.family == Family::TimeMonotonicity),
            "a past-due event must be flagged: {vs:?}"
        );
    });
}

#[test]
fn tcb_actions_after_teardown_are_caught() {
    with_simcheck(|| {
        intang_simcheck::begin_trial(4);
        let key = FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), 40_000, Ipv4Addr::new(10, 9, 0, 1), 80);
        let domain = intang_simcheck::new_tcb_domain();
        intang_simcheck::tcb_created(domain, key);
        intang_simcheck::tcb_removed(domain, key);
        intang_simcheck::tcb_detection(domain, key);
        intang_simcheck::tcb_resync(domain, key, intang_simcheck::ResyncTrigger::Rst);
        let vs = intang_simcheck::take_violations();
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().all(|v| v.family == Family::TcbLegality));
    });
}

#[test]
fn reassembly_head_regression_is_caught() {
    with_simcheck(|| {
        intang_simcheck::begin_trial(5);
        let mut asm = Assembler::new(SegmentOverlapPolicy::FirstWins);
        asm.insert(0, b"hello");
        assert_eq!(asm.pull(), b"hello");
        assert!(intang_simcheck::take_violations().is_empty(), "in-order flow is clean");
        asm.force_head_for_test(2);
        asm.insert(7, b"xy");
        let vs = intang_simcheck::take_violations();
        assert!(
            vs.iter().any(|v| v.family == Family::Reassembly),
            "head regression must be flagged: {vs:?}"
        );
    });
}

#[test]
fn deliberate_bad_checksum_insertions_are_whitelisted() {
    // The Table 3 bad-checksum discrepancy deliberately emits corrupt
    // packets; the whitelist keeps them from drowning the checker.
    with_simcheck(|| {
        let s = Scenario::smoke(2017);
        let mut site = s.websites[0].clone();
        site.old_device = true;
        let mut spec = TrialSpec::new(
            &s.vantage_points[0],
            &site,
            Some(StrategyKind::TeardownRst(intang_core::Discrepancy::BadChecksum)),
            true,
            1234,
        );
        spec.route_change_prob = 0.0;
        intang_simcheck::begin_trial(1234);
        let _ = run_http_trial(&spec);
        let vs = intang_simcheck::take_violations();
        assert!(vs.is_empty(), "whitelisted insertions must not be flagged: {vs:?}");
    });
}

#[test]
fn simcheck_enabled_sweep_is_clean_and_byte_identical() {
    // The full smoke sweep with checking on: zero violations, and rows /
    // events / metrics / diagnoses byte-identical to the unchecked run at
    // 1, 2 and 8 workers (checks draw no RNG and change no timing).
    let s = Scenario::smoke(7);
    for strategy in [Some(StrategyKind::ImprovedTeardown), None] {
        let plain_cfg = SweepConfig::new(strategy, true, 2, 1312);
        let mut checked_cfg = plain_cfg.clone();
        checked_cfg.simcheck = true;
        let plain = sweep_with_threads(&s, &plain_cfg, 1);
        for workers in [1usize, 2, 8] {
            let checked = sweep_with_threads(&s, &checked_cfg, workers);
            assert_eq!(checked.violations, 0, "sweep must be violation-free");
            assert_eq!(plain.rows, checked.rows, "{workers} workers");
            assert_eq!(plain.events, checked.events, "{workers} workers");
            assert_eq!(plain.metrics, checked.metrics, "{workers} workers");
            assert_eq!(plain.diagnoses, checked.diagnoses, "{workers} workers");
        }
    }
}

#[test]
fn shrinker_writes_a_minimal_deterministic_repro() {
    let dir = std::env::temp_dir().join("intang-simcheck-shrinker-test");
    let _ = std::fs::remove_dir_all(&dir);
    // Only this test reads the variable (every other sweep here is
    // violation-free and never resolves an artifact dir).
    std::env::set_var("INTANG_SIMCHECK_DIR", &dir);

    let s = Scenario::smoke(2017);
    let mut cfg = SweepConfig::new(Some(StrategyKind::NoStrategy), false, 1, 2017);
    cfg.simcheck = true;
    cfg.route_change_prob = 0.0;

    intang_simcheck::arm_corruption(4);
    let cell = run_cell_telemetry(&s.vantage_points[0], 0, &s.websites[0], 0, &cfg);
    intang_simcheck::disarm_corruption();
    let _ = intang_simcheck::take_violations();
    assert!(cell.violations > 0, "the armed corruption must surface as a violation");

    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("artifact dir created")
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(entries.len(), 1, "exactly one repro artifact for the cell");
    let path = entries[0].path();
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("simcheck minimal repro"), "{text}");
    assert!(text.contains("wire_integrity"), "{text}");
    assert!(text.contains("reproducible:      true"), "{text}");
    assert!(text.contains("lineage of the final trace event:"), "{text}");
    assert!(text.contains("replay:"), "{text}");
    // The bisected horizon is a strict shrink of the full trial.
    let horizon_line = text.lines().find(|l| l.starts_with("horizon:")).unwrap();
    let shrunk: u64 = horizon_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    assert!(shrunk < 25_000_000, "horizon must shrink below the full trial: {horizon_line}");

    // Replaying the shrink is deterministic: same bytes, artifact included.
    let first = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    intang_simcheck::arm_corruption(4);
    let cell2 = run_cell_telemetry(&s.vantage_points[0], 0, &s.websites[0], 0, &cfg);
    intang_simcheck::disarm_corruption();
    let _ = intang_simcheck::take_violations();
    assert_eq!(cell2.violations, cell.violations);
    let second = std::fs::read(&path).unwrap();
    assert_eq!(first, second, "repro artifact must be byte-stable across replays");

    std::env::remove_var("INTANG_SIMCHECK_DIR");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trials_with_isns_pinned_at_wraparound_behave_like_default() {
    // RFC 1982 regression net: pin both stacks' first ISN just below
    // u32::MAX so every relative-sequence computation in the GFW TCB,
    // the reassembly buffers and the insertion builders crosses the
    // wraparound mid-handshake — with simcheck watching.
    with_simcheck(|| {
        let s = Scenario::smoke(11);
        let mut site = s.websites[0].clone();
        site.old_device = false;
        site.evolved_device = true;
        site.server_seqfw = false;
        site.path_drops_noflag = false;
        site.loss = 0.0;

        for k in [0u32, 1, 3, 1000] {
            let mut spec = TrialSpec::new(&s.vantage_points[0], &site, Some(StrategyKind::NoStrategy), false, 7);
            spec.route_change_prob = 0.0;
            spec.isn_base = Some(u32::MAX - k);
            intang_simcheck::begin_trial(7);
            let r = run_http_trial(&spec);
            assert_eq!(r.outcome, Outcome::Success, "benign fetch with ISN at MAX-{k}: {r:?}");
            assert_eq!(r.response_status, Some(200));
            let vs = intang_simcheck::take_violations();
            assert!(vs.is_empty(), "wraparound ISNs must not trip invariants: {vs:?}");
        }

        // Outcomes are invariant to the pinned ISN, seed for seed.
        for seed in 0..6u64 {
            let mut a = TrialSpec::new(
                &s.vantage_points[0],
                &site,
                Some(StrategyKind::ImprovedTeardown),
                true,
                9_000 + seed,
            );
            a.route_change_prob = 0.0;
            intang_simcheck::begin_trial(a.seed);
            let ra = run_http_trial(&a);
            assert!(intang_simcheck::take_violations().is_empty());

            let mut b = TrialSpec::new(
                &s.vantage_points[0],
                &site,
                Some(StrategyKind::ImprovedTeardown),
                true,
                9_000 + seed,
            );
            b.route_change_prob = 0.0;
            b.isn_base = Some(u32::MAX - 2);
            intang_simcheck::begin_trial(b.seed);
            let rb = run_http_trial(&b);
            let vs = intang_simcheck::take_violations();
            assert!(vs.is_empty(), "seed {seed}: {vs:?}");
            assert_eq!(ra.outcome, rb.outcome, "seed {seed}: ISN pinning changed the outcome");
            assert_eq!(ra.resets_seen, rb.resets_seen, "seed {seed}");
        }
    });
}
