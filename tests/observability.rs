//! Observability stack integration tests: gauge-series determinism across
//! worker counts, series compaction at the full trial horizon, span
//! profiling's non-interference with experiment output, and the flight
//! recorder's bounded ring over a real trial.

use intang_core::StrategyKind;
use intang_experiments::runner::{sweep_with_threads, SweepConfig};
use intang_experiments::scenario::Scenario;
use intang_experiments::trial::{build_http_sim, drive_http_trial, TrialSpec};
use intang_netsim::flight::FLIGHT_CAP;
use intang_telemetry::series::SERIES_CAP;
use intang_telemetry::{GaugeId, SpanId};

/// The merged gauge series of a sweep must be byte-identical at 1, 2 and 8
/// workers — the same guarantee the executor gives for rows and metrics.
#[test]
fn gauge_series_are_byte_identical_across_worker_counts() {
    let scenario = Scenario::smoke(2017);
    let prev = intang_telemetry::series::set_thread(Some(true));
    let cfg = SweepConfig::new(Some(StrategyKind::ImprovedTeardown), true, 2, 2017);
    let runs: Vec<_> = [1usize, 2, 8].iter().map(|&t| sweep_with_threads(&scenario, &cfg, t)).collect();
    intang_telemetry::series::set_thread(prev);

    let base = runs[0].series.as_ref().expect("series enabled on the sweep thread");
    assert!(!base.is_empty(), "a full sweep must sample at least one tick");
    for run in &runs[1..] {
        let other = run.series.as_ref().expect("workers inherit the series override");
        assert_eq!(base, other, "merged series diverged across worker counts");
        for id in GaugeId::ALL {
            assert_eq!(
                base.series(id).to_json(),
                other.series(id).to_json(),
                "JSON bytes diverged for {}",
                id.name()
            );
        }
    }
    // The substrate gauges genuinely observe traffic: the event queue is
    // never empty while a trial is in flight.
    let q = base.series(GaugeId::EventQueueDepth);
    assert!(q.bins().iter().any(|b| b.max > 0), "event-queue gauge never saw a pending event");
}

/// A full 25 s trial horizon at the 100 ms cadence crosses the series
/// capacity twice: the retained series must be compacted (stride > 1)
/// while staying within [`SERIES_CAP`] bins and losing no samples.
#[test]
fn full_horizon_series_compact_within_capacity() {
    let scenario = Scenario::smoke(2017);
    let spec = TrialSpec::new(
        &scenario.vantage_points[0],
        &scenario.websites[0],
        Some(StrategyKind::NoStrategy),
        true,
        7,
    );
    let prev = intang_telemetry::series::set_thread(Some(true));
    let (mut sim, parts) = build_http_sim(&spec);
    drive_http_trial(&mut sim, &parts, &spec);
    let sheet = sim.take_series().expect("series enabled at sim construction");
    intang_telemetry::series::set_thread(prev);

    for id in GaugeId::ALL {
        let s = sheet.series(id);
        assert!(
            s.bins().len() <= SERIES_CAP,
            "{}: {} bins exceed the cap",
            id.name(),
            s.bins().len()
        );
        assert!(s.stride() > 1, "{}: a full horizon must have compacted", id.name());
        let count: u64 = s.bins().iter().map(|b| b.count).sum();
        assert_eq!(count, s.ticks(), "{}: compaction lost samples", id.name());
        assert!(
            s.ticks() > u64::from(SERIES_CAP as u32),
            "{}: expected more ticks than the cap",
            id.name()
        );
    }
}

/// Span profiling is wall-clock observation only: a sweep with the
/// profiler on produces byte-identical experiment output (rows, metrics,
/// diagnoses, event counts) to one with it off.
#[test]
fn span_profiler_never_touches_experiment_output() {
    let scenario = Scenario::smoke(2017);
    let cfg = SweepConfig::new(Some(StrategyKind::NoStrategy), true, 2, 2017);
    let prev = intang_telemetry::spans::set_thread(Some(false));
    let off = sweep_with_threads(&scenario, &cfg, 2);
    intang_telemetry::spans::set_thread(Some(true));
    let on = sweep_with_threads(&scenario, &cfg, 2);
    intang_telemetry::spans::set_thread(prev);

    assert_eq!(off.rows, on.rows);
    assert_eq!(off.events, on.events);
    assert_eq!(off.metrics, on.metrics);
    assert_eq!(off.diagnoses, on.diagnoses);
    assert!(off.profile().is_empty(), "disabled profiler must record nothing");

    let profile = on.profile();
    assert!(!profile.is_empty(), "enabled profiler must attribute time");
    assert!(profile.self_nanos[SpanId::Trial as usize] > 0, "trials were profiled");
    // Folded export: every line is `stack<space>count`.
    let folded = profile.folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("count parses");
    }
}

/// The flight recorder keeps a bounded, oldest-first tail of dispatches
/// through a real trial, and the rendered dump names simulation elements.
#[test]
fn flight_recorder_wraps_and_dumps_through_a_real_trial() {
    let scenario = Scenario::smoke(2017);
    // A successful evasion trial completes the full HTTP fetch and
    // dispatches well past FLIGHT_CAP events, so the ring must wrap.
    let spec = TrialSpec::new(
        &scenario.vantage_points[0],
        &scenario.websites[0],
        Some(StrategyKind::ImprovedTeardown),
        true,
        42,
    );
    let prev = intang_netsim::flight::set_thread(Some(true));
    let (mut sim, parts) = build_http_sim(&spec);
    drive_http_trial(&mut sim, &parts, &spec);
    let dump = sim.flight_dump().expect("flight recorder enabled at sim construction");
    intang_netsim::flight::set_thread(prev);

    // A full trial dispatches far more than FLIGHT_CAP events: the header
    // line must say so and the body must be exactly the retained tail.
    let mut lines = dump.lines();
    let header = lines.next().expect("dump has a header");
    assert!(
        header.contains(&format!("last {FLIGHT_CAP} of")) && header.contains("older overwritten"),
        "expected a wrapped ring, got: {header}"
    );
    assert_eq!(lines.clone().count(), FLIGHT_CAP);
    // Timestamps are rendered oldest-first and non-decreasing.
    let times: Vec<u64> = dump
        .lines()
        .skip(1)
        .map(|l| {
            let open = l.find('[').unwrap();
            let close = l.find("us]").unwrap();
            l[open + 1..close].trim().parse().unwrap()
        })
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "dump not oldest-first");
    // Element indices resolve to names, not raw numbers.
    assert!(dump.contains("deliver"), "a trial tail must contain deliveries:\n{header}");
}

/// Disabled observability is the default: a plain sweep carries no series
/// and an empty profile, so pre-existing outputs cannot have changed.
#[test]
fn observability_is_off_by_default() {
    let scenario = Scenario::smoke(2017);
    let cfg = SweepConfig::new(Some(StrategyKind::NoStrategy), true, 1, 2017);
    let run = sweep_with_threads(&scenario, &cfg, 2);
    assert!(run.series.is_none(), "series sampled without INTANG_SERIES");
    assert!(run.profile().is_empty(), "spans recorded without INTANG_SPANS");
}
