//! Scriptable censor profiles: the checked-in profile files must
//! reproduce the hard-coded GFW models byte-for-byte, the turkmenistan
//! profile must behave like a genuinely different censor, and per-device
//! heterogeneity must never cost worker-count determinism.

use intang_core::StrategyKind;
use intang_experiments::runner::{sweep_with_threads, SweepConfig};
use intang_experiments::scenario::Scenario;
use intang_gfw::CensorProfile;
use intang_telemetry::Counter;
use std::path::Path;

/// The checked-in profile files, straight from the repository.
fn checked_in(name: &str) -> CensorProfile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("profiles/{name}.toml"));
    CensorProfile::load(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn checked_in_profiles_match_the_builtin_constructors() {
    for name in CensorProfile::BUILTIN_NAMES {
        let file = checked_in(name);
        let builtin = CensorProfile::builtin(name).unwrap();
        assert_eq!(file, builtin, "{name}.toml drifted from the builtin model");
    }
}

#[test]
fn profile_driven_sweeps_reproduce_builtin_sweeps_at_1_2_8_workers() {
    // The tentpole promise: compiling the checked-in gfw_prior +
    // gfw_evolved files onto the dense machinery is invisible — rows,
    // events, merged metrics and per-trial diagnoses byte-identical to
    // the hard-coded models, at every worker count.
    let prior = checked_in("gfw_prior");
    let evolved = checked_in("gfw_evolved");
    let builtin = Scenario::smoke(7);
    let from_files = Scenario::smoke(7).with_profiles(&prior, &evolved).expect("profiles compile");
    let cfg = SweepConfig::new(Some(StrategyKind::ImprovedTeardown), true, 3, 1312);
    let reference = sweep_with_threads(&builtin, &cfg, 1);
    for workers in [1usize, 2, 8] {
        let run = sweep_with_threads(&from_files, &cfg, workers);
        assert_eq!(reference.rows, run.rows, "rows differ at {workers} workers");
        assert_eq!(reference.events, run.events, "events differ at {workers} workers");
        assert_eq!(reference.metrics, run.metrics, "metrics differ at {workers} workers");
        assert_eq!(reference.diagnoses, run.diagnoses, "diagnoses differ at {workers} workers");
    }
}

#[test]
fn adaptive_profile_sweeps_match_builtin_too() {
    // Adaptive mode exercises the strategy-selection history as well.
    let prior = checked_in("gfw_prior");
    let evolved = checked_in("gfw_evolved");
    let cfg = SweepConfig::new(None, true, 2, 99);
    let a = sweep_with_threads(&Scenario::smoke(3), &cfg, 2);
    let b = sweep_with_threads(&Scenario::smoke(3).with_profiles(&prior, &evolved).unwrap(), &cfg, 2);
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.metrics, b.metrics);
}

/// Compact, order-stable rendering of a sweep's outcome grid.
fn grid(rows: &[(String, intang_experiments::runner::Aggregate)]) -> String {
    rows.iter()
        .map(|(n, a)| format!("{n}={}/{}/{}", a.success, a.failure1, a.failure2))
        .collect::<Vec<_>>()
        .join(" ")
}

#[test]
fn turkmenistan_outcome_grid_is_distinct_deterministic_and_blockpage_driven() {
    let tk = checked_in("turkmenistan");
    let scenario = Scenario::smoke(7).with_custom_censor(&tk).expect("profile compiles");
    // No evasion, keyword on: every fetch provokes the censor.
    let cfg = SweepConfig::new(Some(StrategyKind::NoStrategy), true, 3, 1312);
    let reference = sweep_with_threads(&scenario, &cfg, 1);

    // Distinct from the GFW models on the same paper scenario...
    let gfw = sweep_with_threads(&Scenario::smoke(7), &cfg, 1);
    assert_ne!(grid(&reference.rows), grid(&gfw.rows), "turkmenistan must not mimic the GFW grid");

    // ...blockpage-driven, with no type-2 blacklist machinery...
    assert!(
        reference.metrics.counter(Counter::GfwBlockpagesInjected) > 0,
        "blockpages must fire"
    );
    assert_eq!(
        reference.metrics.counter(Counter::GfwForgedSynacks),
        0,
        "no forged SYN/ACKs without type-2"
    );
    assert_eq!(
        reference.metrics.counter(Counter::GfwTcbResyncs),
        0,
        "the prior-generation machine never resynchronizes"
    );
    assert!(
        reference.metrics.counter(Counter::GfwProfileTurkmenistanDevices) > 0,
        "trials must be tagged with the turkmenistan device counter"
    );
    assert_eq!(reference.metrics.counter(Counter::GfwProfileEvolvedDevices), 0);

    // ...and byte-identical at every worker count.
    for workers in [2usize, 8] {
        let run = sweep_with_threads(&scenario, &cfg, workers);
        assert_eq!(reference.rows, run.rows, "rows differ at {workers} workers");
        assert_eq!(reference.metrics, run.metrics, "metrics differ at {workers} workers");
        assert_eq!(reference.diagnoses, run.diagnoses, "diagnoses differ at {workers} workers");
    }
}

#[test]
fn heterogeneous_profiles_keep_worker_count_determinism() {
    // Seeded per-device perturbation draws from the site identity, never
    // from execution order — so a jittered fleet still replays
    // byte-identically at any worker count.
    let mut evolved = checked_in("gfw_evolved");
    evolved.het_blacklist_jitter = 0.2;
    evolved.het_resync_jitter = 0.05;
    let prior = checked_in("gfw_prior");
    let scenario = Scenario::smoke(7).with_profiles(&prior, &evolved).expect("profiles compile");
    let cfg = SweepConfig::new(Some(StrategyKind::ImprovedTeardown), true, 3, 1312);
    let reference = sweep_with_threads(&scenario, &cfg, 1);
    for workers in [2usize, 8] {
        let run = sweep_with_threads(&scenario, &cfg, workers);
        assert_eq!(reference.rows, run.rows, "rows differ at {workers} workers");
        assert_eq!(reference.metrics, run.metrics, "metrics differ at {workers} workers");
    }
    // And the same scenario rebuilt from scratch replays exactly.
    let rebuilt = Scenario::smoke(7).with_profiles(&prior, &evolved).unwrap();
    let again = sweep_with_threads(&rebuilt, &cfg, 4);
    assert_eq!(reference.rows, again.rows);
    assert_eq!(reference.metrics, again.metrics);
}

#[test]
fn metropolis_censor_profile_and_middlebox_knobs_hold_their_contracts() {
    use intang_experiments::metropolis::{middlebox_interference_diagnoses, run_metropolis_domains, MetroParams};
    // Turkmenistan metropolis: blockpages at 1k-flow scale, byte-identical
    // across the domain split.
    let mut p = MetroParams::new(1_000, 41);
    p.shards = 4;
    p.censor = Some(checked_in("turkmenistan").compile().expect("profile compiles"));
    let reference = run_metropolis_domains(&p, 1, 1);
    assert!(
        reference.run.metrics.counter(Counter::GfwBlockpagesInjected) > 0,
        "metropolis turkmenistan must inject blockpages"
    );
    assert_eq!(reference.run.metrics.counter(Counter::GfwProfileTurkmenistanDevices), 1);
    let par = run_metropolis_domains(&p, 4, 4);
    assert_eq!(reference.run.counts, par.run.counts);
    assert_eq!(reference.run.metrics, par.run.metrics);

    // Middlebox knob composes with a profile censor and stays
    // deterministic across the domain split. (The nonzero-interference
    // regression at 1k flows runs against the stock censor in
    // `metropolis::tests::middlebox_hop_interferes_at_scale_...`.)
    p.middlebox = true;
    let mb = run_metropolis_domains(&p, 2, 2);
    let serial = run_metropolis_domains(&p, 1, 1);
    assert_eq!(serial.run.counts, mb.run.counts);
    assert_eq!(serial.run.metrics, mb.run.metrics);
    assert_eq!(
        middlebox_interference_diagnoses(&serial.run),
        middlebox_interference_diagnoses(&mb.run)
    );

    // And with the stock censor at the same seed, the seqfw does bite.
    p.censor = None;
    let stock = run_metropolis_domains(&p, 2, 2);
    assert!(
        stock.run.metrics.counter(Counter::MiddleboxSeqfwBlocked) > 0,
        "stock censor + seqfw must block at 1k flows"
    );
}
