//! Cross-crate end-to-end matrix: every strategy against every censor
//! generation mix, on clean paths — verifying the *mechanics* (who evades
//! what) independent of the calibrated failure-rate noise.

use intang_core::{Discrepancy, StrategyKind};
use intang_experiments::scenario::{Scenario, Website};
use intang_experiments::trial::{run_http_trial, Outcome, TrialSpec};
use intang_tcpstack::reasm::SegmentOverlapPolicy;

/// A middlebox-benign site with a controllable censor mix.
fn clean_site(old: bool, evolved: bool) -> Website {
    let s = Scenario::paper_inside(1234);
    let mut site = s.websites[0].clone();
    site.old_device = old;
    site.evolved_device = evolved;
    site.gfw_seg_overlap = SegmentOverlapPolicy::LastWins;
    site.server_seqfw = false;
    site.server_conntrack = false;
    site.flaky_server = false;
    site.path_drops_noflag = false;
    site.server_profile = intang_tcpstack::StackProfile::linux_4_4();
    site.loss = 0.0;
    site
}

/// Success rate of `kind` over `n` deterministic trials on a clean
/// Beijing-Aliyun path.
fn rate(kind: StrategyKind, old: bool, evolved: bool, n: u64) -> f64 {
    let s = Scenario::paper_inside(1234);
    let site = clean_site(old, evolved);
    let mut ok = 0;
    for seed in 0..n {
        let mut spec = TrialSpec::new(&s.vantage_points[0], &site, Some(kind), true, 777_000 + seed);
        spec.route_change_prob = 0.0;
        if run_http_trial(&spec).outcome == Outcome::Success {
            ok += 1;
        }
    }
    ok as f64 / n as f64
}

#[test]
fn new_strategies_beat_every_generation_mix() {
    for kind in [
        StrategyKind::ImprovedTeardown,
        StrategyKind::ImprovedInOrderOverlap,
        StrategyKind::TcbCreationResyncDesync,
        StrategyKind::TeardownTcbReversal,
    ] {
        for (old, evolved) in [(true, false), (false, true), (true, true)] {
            let r = rate(kind, old, evolved, 8);
            assert!(r >= 0.85, "{kind:?} vs (old={old}, evolved={evolved}): success rate {r}");
        }
    }
}

#[test]
fn legacy_strategies_beat_only_the_old_model() {
    // TCB creation and FIN teardown: reliable against the prior model,
    // dead against the evolved one (§3.4 / §4). Probed from qcloud-bj,
    // whose middleboxes pass FIN insertions (Table 2 — Aliyun sometimes
    // drops them).
    let s = Scenario::paper_inside(1234);
    let vp = s.vantage_points.iter().find(|v| v.name == "qcloud-bj").unwrap();
    let rate_from = |kind: StrategyKind, old: bool, evolved: bool| {
        let site = clean_site(old, evolved);
        let n = 8;
        let ok = (0..n)
            .filter(|seed| {
                let mut spec = TrialSpec::new(vp, &site, Some(kind), true, 888_000 + seed);
                spec.route_change_prob = 0.0;
                run_http_trial(&spec).outcome == Outcome::Success
            })
            .count();
        ok as f64 / n as f64
    };
    for kind in [
        StrategyKind::TcbCreationSyn(Discrepancy::SmallTtl),
        StrategyKind::TeardownFin(Discrepancy::SmallTtl),
    ] {
        let vs_old = rate_from(kind, true, false);
        let vs_new = rate_from(kind, false, true);
        assert!(vs_old >= 0.85, "{kind:?} vs old model: {vs_old}");
        assert!(vs_new <= 0.3, "{kind:?} vs evolved model: {vs_new}");
    }
}

#[test]
fn in_order_overlap_beats_both_generations() {
    let r = rate(StrategyKind::InOrderOverlap(Discrepancy::SmallTtl), true, true, 8);
    assert!(r >= 0.85, "in-order prefill works on both models: {r}");
}

#[test]
fn rst_teardown_mostly_beats_evolved_model() {
    // Sticky resync (~20%) is the residual failure mode.
    let r = rate(StrategyKind::TeardownRst(Discrepancy::SmallTtl), false, true, 30);
    assert!((0.5..=0.97).contains(&r), "teardown succeeds modulo sticky resync: {r}");
}

#[test]
fn no_strategy_almost_always_censored() {
    let r = rate(StrategyKind::NoStrategy, false, true, 20);
    assert!(r <= 0.15, "bare keyword requests are censored: {r}");
}

#[test]
fn without_keyword_everything_succeeds() {
    let s = Scenario::paper_inside(1234);
    let site = clean_site(true, true);
    for kind in [
        StrategyKind::NoStrategy,
        StrategyKind::ImprovedTeardown,
        StrategyKind::TcbCreationResyncDesync,
    ] {
        let mut spec = TrialSpec::new(&s.vantage_points[0], &site, Some(kind), false, 31337);
        spec.route_change_prob = 0.0;
        let r = run_http_trial(&spec);
        assert_eq!(r.outcome, Outcome::Success, "{kind:?}: {r:?}");
        assert_eq!(r.gfw_detections, 0);
    }
}

#[test]
fn reversal_flips_the_censors_orientation() {
    // Drive one trial and inspect the censor's belief directly.
    let s = Scenario::paper_inside(1234);
    let site = clean_site(false, true);
    let mut spec = TrialSpec::new(&s.vantage_points[0], &site, Some(StrategyKind::TeardownTcbReversal), true, 555);
    spec.route_change_prob = 0.0;
    let (mut sim, parts) = intang_experiments::trial::build_http_sim(&spec);
    sim.run_until(intang_netsim::Instant(25_000_000));
    assert!(parts.report.borrow().succeeded());
    // If the reversal TCB survived the teardown RST, its believed client is
    // the *server*; if the RST removed it, there is no TCB at all. Either
    // way the censor never inspected the true client stream.
    assert_eq!(parts.gfw_handles[0].detections().len(), 0);
}

#[test]
fn old_gfw_segment_preference_is_exploitable_but_evolved_first_wins_is_not() {
    let mut fooled = clean_site(false, true);
    fooled.gfw_seg_overlap = SegmentOverlapPolicy::LastWins;
    let mut robust = clean_site(false, true);
    robust.gfw_seg_overlap = SegmentOverlapPolicy::FirstWins;
    let s = Scenario::paper_inside(1234);
    let mut ok_fooled = 0;
    let mut ok_robust = 0;
    for seed in 0..8 {
        let mut spec = TrialSpec::new(
            &s.vantage_points[0],
            &fooled,
            Some(StrategyKind::OutOfOrderTcpSeg),
            true,
            600 + seed,
        );
        spec.route_change_prob = 0.0;
        ok_fooled += u32::from(run_http_trial(&spec).outcome == Outcome::Success);
        let mut spec = TrialSpec::new(
            &s.vantage_points[0],
            &robust,
            Some(StrategyKind::OutOfOrderTcpSeg),
            true,
            700 + seed,
        );
        spec.route_change_prob = 0.0;
        ok_robust += u32::from(run_http_trial(&spec).outcome == Outcome::Success);
    }
    assert!(ok_fooled >= 7, "last-wins censor keeps the garbage: {ok_fooled}/8");
    assert!(ok_robust <= 1, "first-wins censor keeps the real bytes: {ok_robust}/8");
}
