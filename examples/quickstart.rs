//! Quickstart: fetch a censored page through the simulated Great Firewall,
//! first unprotected (watch it get reset), then with INTANG's improved
//! TCB-teardown strategy (watch it evade).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use intang_core::StrategyKind;
use intang_experiments::scenario::Scenario;
use intang_experiments::trial::{run_http_trial, Outcome, TrialSpec};

fn main() {
    let scenario = Scenario::paper_inside(2017);
    let vantage = &scenario.vantage_points[0]; // an Aliyun client in Beijing
    let site = &scenario.websites[0];

    println!("client  : {} ({}, {})", vantage.name, vantage.city, vantage.isp);
    println!("website : {} at {}", site.name, site.addr);
    println!("request : GET /search?q=ultrasurf   <- sensitive keyword\n");

    for (label, strategy) in [
        ("no protection", StrategyKind::NoStrategy),
        ("INTANG improved TCB teardown", StrategyKind::ImprovedTeardown),
    ] {
        let mut spec = TrialSpec::new(vantage, site, Some(strategy), true, 42);
        spec.route_change_prob = 0.0;
        let result = run_http_trial(&spec);
        let verdict = match result.outcome {
            Outcome::Success => "SUCCESS — response received, no resets".to_string(),
            Outcome::Failure1 => "FAILURE 1 — connection hung (no response, no resets)".to_string(),
            Outcome::Failure2 => format!("FAILURE 2 — censored ({} reset packets injected)", result.resets_seen),
        };
        println!("[{label}]");
        println!("   outcome        : {verdict}");
        println!("   HTTP status    : {:?}", result.response_status);
        println!("   GFW detections : {}\n", result.gfw_detections);
    }

    println!("The no-protection fetch trips the censor's DPI and draws the");
    println!("type-1/type-2 reset volley; the protected fetch tears down (or");
    println!("desynchronizes) the censor's TCB first, so the same request");
    println!("sails through. See EXPERIMENTS.md for the full reproduction.");
}
