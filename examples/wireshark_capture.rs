//! Export a censored fetch and an evaded fetch as libpcap captures you can
//! open side-by-side in Wireshark: `censored.pcap` shows the type-1/type-2
//! reset volley landing on the client; `evaded.pcap` shows the insertion
//! packets and the untouched 200 OK.
//!
//! ```sh
//! cargo run --release --example wireshark_capture
//! wireshark censored.pcap evaded.pcap   # optional
//! ```

use intang_apps::host::add_host;
use intang_apps::http::{HttpClientDriver, HttpServerDriver};
use intang_core::{IntangConfig, IntangElement, StrategyKind};
use intang_experiments::tap::RecorderTap;
use intang_gfw::{GfwConfig, GfwElement};
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::http::HttpRequest;
use intang_tcpstack::StackProfile;
use std::net::Ipv4Addr;

fn capture(strategy: StrategyKind, path: &str) {
    let client_addr = Ipv4Addr::new(10, 0, 0, 1);
    let server_addr = Ipv4Addr::new(203, 0, 113, 80);
    let mut sim = Simulation::new(7);
    let (driver, report) = HttpClientDriver::new(server_addr, 80, HttpRequest::get("/search?q=ultrasurf", "demo.example"));
    add_host(
        &mut sim,
        "client",
        client_addr,
        StackProfile::linux_4_4(),
        Box::new(driver),
        Direction::ToServer,
    );

    sim.add_link(Link::new(Duration::from_micros(50), 0));
    let (tap, tap_handle) = RecorderTap::new("capture-point");
    sim.add_element(Box::new(tap));

    sim.add_link(Link::new(Duration::from_micros(50), 0));
    let (intang_el, _h) = IntangElement::new(client_addr, IntangConfig::fixed(strategy));
    sim.add_element(Box::new(intang_el));

    sim.add_link(Link::new(Duration::from_millis(4), 5));
    let mut cfg = GfwConfig::evolved();
    cfg.overload_miss_prob = 0.0;
    let (gfw, gfw_handle) = GfwElement::new(cfg);
    sim.add_element(Box::new(gfw));

    sim.add_link(Link::new(Duration::from_millis(6), 5));
    let (_i, sh) = add_host(
        &mut sim,
        "server",
        server_addr,
        StackProfile::linux_4_4(),
        Box::new(HttpServerDriver::new(80)),
        Direction::ToClient,
    );
    sh.with_tcp(|t| t.listen(80));

    sim.run_until(Instant(20_000_000));
    let pcap = tap_handle.to_pcap();
    pcap.save(std::path::Path::new(path)).expect("write pcap");
    println!(
        "{path}: {} packets, strategy={}, response={}, detections={}",
        pcap.packet_count(),
        strategy.label(),
        report.borrow().response.is_some(),
        gfw_handle.detections().len()
    );
}

fn main() {
    // The capture point sits between the client host and INTANG, so the
    // censored run shows the raw resets and the evaded run shows only the
    // client's own traffic plus the clean response (the insertion packets
    // are injected on the far side of the shim).
    capture(StrategyKind::NoStrategy, "censored.pcap");
    capture(StrategyKind::ImprovedTeardown, "evaded.pcap");
    println!("\nOpen both files in Wireshark and compare: the censored trace");
    println!("ends in the type-2 RST/ACK ladder (seq offsets +0/+1460/+4380);");
    println!("the evaded trace carries a plain 200 OK.");
}
