//! DNS censorship evasion (§6, Table 6): the censor poisons UDP queries for
//! blacklisted domains by injecting forged answers; INTANG's forwarder
//! converts the query to DNS-over-TCP toward a clean resolver, protected by
//! the TCP-level evasion strategies.
//!
//! ```sh
//! cargo run --release --example dns_over_tcp
//! ```

use intang_experiments::scenario::Scenario;
use intang_experiments::trial_dns::{run_dns_trial, DnsOutcome, DnsTrialSpec, CENSORED_DOMAIN, DYN1, REAL_ADDR};
use intang_gfw::device::POISON_ADDR;

fn main() {
    let scenario = Scenario::paper_inside(3);
    let vantage = &scenario.vantage_points[2];

    println!("resolving {CENSORED_DOMAIN} from {}\n", vantage.name);
    println!("real address   : {REAL_ADDR}");
    println!("poison address : {POISON_ADDR} (the censor's forged answer)\n");

    for (label, use_intang) in [("plain UDP query", false), ("INTANG DNS-over-TCP forwarder", true)] {
        let mut resolved = 0;
        let mut poisoned = 0;
        let mut failed = 0;
        let n = 10;
        for seed in 0..n {
            let spec = DnsTrialSpec {
                vp: vantage,
                resolver: DYN1,
                use_intang,
                seed: 500 + seed,
                nat_prob: 0.0,
            };
            match run_dns_trial(&spec) {
                DnsOutcome::Resolved => resolved += 1,
                DnsOutcome::Poisoned => poisoned += 1,
                DnsOutcome::Failed => failed += 1,
            }
        }
        println!("[{label}]  resolved {resolved}/{n}  poisoned {poisoned}/{n}  failed {failed}/{n}");
    }

    println!("\nThe injected UDP answer always wins the race against the real");
    println!("resolver; over TCP the same query is protected by the improved");
    println!("TCB-teardown strategy and resolves correctly (Table 6).");
}
