//! Tor bridge blocking and rescue (§7.3): the censor fingerprints the Tor
//! handshake, actively probes the suspected bridge from its own prober
//! hosts, and on confirmation blocks the bridge IP for everyone. INTANG
//! hides the fingerprint from the censor so the probe never launches.
//!
//! ```sh
//! cargo run --release --example tor_bridge
//! ```

use intang_experiments::scenario::Scenario;
use intang_experiments::trial_tor::{run_tor_trial, TorOutcome, TorTrialSpec, BRIDGE_ADDR};

fn main() {
    let scenario = Scenario::paper_inside(13);
    println!("hidden bridge at {BRIDGE_ADDR}:443 (EC2, US)\n");
    println!(
        "{:<13} {:<13} {:<10} {:<28} {:<28}",
        "vantage", "city", "filtered?", "plain Tor", "Tor + INTANG"
    );

    for vantage in &scenario.vantage_points {
        let (plain, handle) = run_tor_trial(&TorTrialSpec {
            vp: vantage,
            use_intang: false,
            seed: 31,
            cells: 3,
        });
        let probes = handle.probes_launched();
        let (prot, handle2) = run_tor_trial(&TorTrialSpec {
            vp: vantage,
            use_intang: true,
            seed: 32,
            cells: 3,
        });
        let fmt = |o: TorOutcome, probes: u64| match o {
            TorOutcome::Working => "working".to_string(),
            TorOutcome::IpBlocked => format!("IP BLOCKED ({} probe)", probes),
            TorOutcome::Disrupted => "disrupted".to_string(),
        };
        println!(
            "{:<13} {:<13} {:<10} {:<28} {:<28}",
            vantage.name,
            vantage.city,
            if vantage.tor_filtered { "yes" } else { "no" },
            fmt(plain, probes),
            fmt(prot, handle2.probes_launched()),
        );
    }

    println!("\nThe four northern vantage points (Beijing, Zhangjiakou, Qingdao)");
    println!("see no Tor-filtering devices and run plain Tor freely — exactly");
    println!("the geography §7.3 reports. Everywhere else the bridge is");
    println!("actively probed and IP-blocked within seconds unless INTANG");
    println!("tears the censor's TCB down before the fingerprint crosses it.");
}
