//! Adaptive browsing session: INTANG's measurement-driven strategy
//! selection (§6) converging per destination. The client fetches the same
//! censored URL from several websites repeatedly; the engine records which
//! strategy worked for each server and converges on it.
//!
//! ```sh
//! cargo run --release --example http_browsing
//! ```

use intang_core::select::History;
use intang_core::StrategyKind;
use intang_experiments::scenario::Scenario;
use intang_experiments::trial::{run_http_trial, Outcome, TrialSpec};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let scenario = Scenario::paper_inside(7);
    let vantage = &scenario.vantage_points[1];
    let rounds = 8;

    println!("Adaptive INTANG from {} — {} rounds per site\n", vantage.name, rounds);
    println!("{:<18} {:>9} {:>9}   converged on", "site", "success", "failure");

    for (si, site) in scenario.websites.iter().take(6).enumerate() {
        // One shared history per destination — the §6 cache, persisted
        // across connections.
        let history: Rc<RefCell<History>> = Rc::new(RefCell::new(History::new()));
        let mut ok = 0;
        let mut bad = 0;
        for round in 0..rounds {
            let mut spec = TrialSpec::new(vantage, site, None, true, 9_000 + (si as u64) * 100 + round);
            spec.history = Some(history.clone());
            match run_http_trial(&spec).outcome {
                Outcome::Success => ok += 1,
                _ => bad += 1,
            }
        }
        // What does the history recommend now?
        let best = history.borrow().choose(site.addr, &StrategyKind::adaptive_pool());
        let tally = history.borrow().tally(site.addr, best);
        println!(
            "{:<18} {:>9} {:>9}   {} ({}/{} with it)",
            site.name,
            ok,
            bad,
            best.label(),
            tally.successes,
            tally.attempts
        );
    }

    println!("\nEvery site converges on a working strategy after at most a few");
    println!("exploratory rounds — the mechanism behind Table 4's 'INTANG");
    println!("Performance' row.");
}
