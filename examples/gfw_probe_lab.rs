//! GFW probe lab: poke the executable censor with hand-crafted packet
//! sequences and watch its TCB state change — the workflow behind the §4
//! hypothesis probes, usable interactively for new experiments.
//!
//! ```sh
//! cargo run --release --example gfw_probe_lab
//! ```

use intang_gfw::tcb::CensorState;
use intang_gfw::{GfwConfig, GfwElement};
use intang_netsim::element::PassThrough;
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::{FourTuple, PacketBuilder, TcpFlags};
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);

fn main() {
    let mut sim = Simulation::new(1);
    sim.add_element(Box::new(PassThrough::new("client-edge")));
    sim.add_link(Link::new(Duration::from_millis(1), 2));
    let (gfw, censor) = GfwElement::new(GfwConfig::evolved().deterministic());
    sim.add_element(Box::new(gfw));
    sim.add_link(Link::new(Duration::from_millis(1), 2));
    sim.add_element(Box::new(PassThrough::new("server-edge")));

    let tuple = FourTuple::new(CLIENT, 40_000, SERVER, 80);
    let mut t = 0u64;
    let mut step = |sim: &mut Simulation, from_client: bool, wire: intang_packet::Wire, label: &str| {
        t += 5_000;
        let (elem, dir) = if from_client {
            (0, Direction::ToServer)
        } else {
            (2, Direction::ToClient)
        };
        sim.inject_at(elem, dir, wire, Instant(t));
        sim.run_to_quiescence(10_000);
        let state = censor.tcb_state(tuple);
        println!(
            "{:<52} -> TCB: {:?}{}",
            label,
            state.map(|s| match s {
                CensorState::Tracking => "Tracking",
                CensorState::Resync => "RESYNC",
            }),
            if censor.detected_any() { "  ** DETECTED **" } else { "" }
        );
    };

    let c2s = || PacketBuilder::tcp(CLIENT, SERVER, 40_000, 80);
    let s2c = || PacketBuilder::tcp(SERVER, CLIENT, 80, 40_000);

    println!("--- a scripted desynchronization session against the evolved censor ---\n");
    step(
        &mut sim,
        true,
        c2s().seq(1000).flags(TcpFlags::SYN).build(),
        "client SYN (isn=1000)",
    );
    step(
        &mut sim,
        false,
        s2c().seq(9000).ack(1001).flags(TcpFlags::SYN_ACK).build(),
        "server SYN/ACK",
    );
    step(
        &mut sim,
        true,
        c2s().seq(1001).ack(9001).flags(TcpFlags::ACK).build(),
        "client ACK (handshake done)",
    );
    step(
        &mut sim,
        true,
        c2s().seq(0x5000_0000).flags(TcpFlags::SYN).build(),
        "insertion SYN, bogus ISN (resync trigger)",
    );
    step(
        &mut sim,
        true,
        c2s().seq(0x4100_0000).ack(9001).flags(TcpFlags::PSH_ACK).payload(b"?").build(),
        "desync packet: 1 byte at an out-of-window seq",
    );
    step(
        &mut sim,
        true,
        c2s()
            .seq(1001)
            .ack(9001)
            .flags(TcpFlags::PSH_ACK)
            .payload(b"GET /ultrasurf HTTP/1.1\r\n\r\n")
            .build(),
        "the real request, at the true sequence",
    );

    println!("\nresets injected by the censor: {}", censor.resets_injected());
    assert_eq!(censor.resets_injected(), 0);
    println!("The censor re-anchored on the desync packet's bogus sequence, so");
    println!("the true request looked out-of-window and was never inspected —");
    println!("the §5.1 desynchronization building block, step by step.");
}
